//! Query execution: Type I (range), Type II (longest) and Type III (nearest).

use std::ops::Range;
use std::time::Instant;

use ssr_distance::SequenceDistance;
use ssr_sequence::{Element, Sequence, SequenceId};

use crate::batch::VerificationMemo;
use crate::candidates::build_candidates;
use crate::database::SubsequenceDatabase;
use crate::expand::enumerate_pairs;

/// A verified pair of similar subsequences.
#[derive(Clone, PartialEq, Debug)]
pub struct SubsequenceMatch {
    /// The database sequence containing the matched subsequence.
    pub sequence: SequenceId,
    /// Half-open element range of the database subsequence `SX`.
    pub db_range: Range<usize>,
    /// Half-open element range of the query subsequence `SQ`.
    pub query_range: Range<usize>,
    /// Verified distance `δ(SQ, SX)`.
    pub distance: f64,
}

impl SubsequenceMatch {
    /// Length of the database subsequence.
    pub fn db_len(&self) -> usize {
        self.db_range.end - self.db_range.start
    }

    /// Length of the query subsequence.
    pub fn query_len(&self) -> usize {
        self.query_range.end - self.query_range.start
    }
}

/// Borrows the two element slices of one candidate pair `(SQ, SX)`: the
/// query subsequence and the database subsequence, both as views into their
/// owning sequences. The single extraction point shared by the verification
/// step and the brute-force ground truths — every kernel invocation on a
/// candidate pair goes through here, and nothing is copied.
pub(crate) fn pair_slices<'a, E: Element>(
    query: &'a Sequence<E>,
    db_seq: &'a Sequence<E>,
    q_range: &Range<usize>,
    x_range: &Range<usize>,
) -> (&'a [E], &'a [E]) {
    (
        &query.elements()[q_range.clone()],
        &db_seq.elements()[x_range.clone()],
    )
}

/// Accounting of the work a query performed, mirroring the quantities the
/// paper's evaluation reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct QueryStats {
    /// Number of query segments extracted (step 3).
    pub segments: usize,
    /// Distance evaluations performed inside the index (step 4).
    pub index_distance_calls: u64,
    /// Number of (segment, window) pairs returned by the range queries.
    pub segment_matches: usize,
    /// Number of distinct windows matched by at least one segment.
    pub unique_windows: usize,
    /// Number of windows that are part of a chain of length at least two.
    pub consecutive_windows: usize,
    /// Number of chained candidates generated (step 5).
    pub candidates: usize,
    /// Distance evaluations spent verifying candidate subsequence pairs.
    pub verification_calls: u64,
    /// Dynamic-program cells evaluated by the distance kernels across the
    /// whole query (index filtering **and** verification). Deterministic and
    /// bit-identical at every thread count, like the call counts: pruning
    /// (lower bounds, banded DP, early abandoning) shrinks this number while
    /// `index_distance_calls` / `verification_calls` stay exactly the same.
    pub dp_cells_evaluated: u64,
    /// Distance evaluations resolved by a cheap lower bound alone, without
    /// running any dynamic program.
    pub pruned_by_lower_bound: u64,
    /// Whether the verification budget (`max_verifications`) was exhausted.
    pub budget_exhausted: bool,
}

impl QueryStats {
    /// Accumulates another query's accounting into this one (used by the
    /// batch engine to report whole-batch totals).
    pub fn merge(&mut self, other: &QueryStats) {
        self.segments += other.segments;
        self.index_distance_calls += other.index_distance_calls;
        self.segment_matches += other.segment_matches;
        self.unique_windows += other.unique_windows;
        self.consecutive_windows += other.consecutive_windows;
        self.candidates += other.candidates;
        self.verification_calls += other.verification_calls;
        self.dp_cells_evaluated += other.dp_cells_evaluated;
        self.pruned_by_lower_bound += other.pruned_by_lower_bound;
        self.budget_exhausted |= other.budget_exhausted;
    }
}

/// The result of a query together with its work accounting.
#[derive(Clone, PartialEq, Debug)]
pub struct QueryOutcome<R> {
    /// The query's result.
    pub result: R,
    /// Work performed to produce it.
    pub stats: QueryStats,
}

/// Wall-clock nanoseconds spent in each stage of the five-step pipeline,
/// mirroring how the batch engine fans the stages out: query segmentation
/// (step 3), index filtering (step 4), candidate chaining (step 5a) and
/// expansion + verification (step 5b). Steps 1–2 are build-time and reported
/// separately by [`SubsequenceDatabase::build_distance_calls`].
///
/// [`SubsequenceDatabase::build_distance_calls`]: crate::SubsequenceDatabase::build_distance_calls
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct StageTimings {
    /// Query segmentation (step 3).
    pub segment_ns: u64,
    /// Index range queries over the windows (step 4).
    pub filter_ns: u64,
    /// Candidate chaining (step 5a).
    pub chain_ns: u64,
    /// Expansion and verification (step 5b).
    pub verify_ns: u64,
}

impl StageTimings {
    /// Sum of all stage times.
    pub fn total_ns(&self) -> u64 {
        self.segment_ns + self.filter_ns + self.chain_ns + self.verify_ns
    }

    /// Accumulates another measurement into this one.
    pub fn merge(&mut self, other: &StageTimings) {
        self.segment_ns += other.segment_ns;
        self.filter_ns += other.filter_ns;
        self.chain_ns += other.chain_ns;
        self.verify_ns += other.verify_ns;
    }
}

/// Per-query execution context threaded through the query internals: stage
/// timing accumulators, an optional span trace, plus an optional handle into
/// the batch engine's shared verification memo. The plain
/// [`SubsequenceDatabase::query_type1`]-style entry points run with a
/// detached context (no memo, timings discarded, no trace).
pub(crate) struct ExecCtx<'a> {
    /// Per-stage wall-clock accumulated so far.
    pub timings: StageTimings,
    /// Shared verification memo and the key of the query being executed.
    pub memo: Option<(&'a VerificationMemo, usize)>,
    /// Verification threshold override. A Type III ε-sweep with a shared memo
    /// sets this to its `epsilon_max`: a verification outcome is memoised
    /// across radii, so the threshold passed to the kernel must cover the
    /// whole sweep — a pair beyond it can never match at any radius and is
    /// safely recorded as `f64::INFINITY`. Without a memo each radius prunes
    /// against its own `ε` (tighter bands, nothing cached).
    pub verify_tau: Option<f64>,
    /// Span trace of this query, when the engine runs with tracing (the
    /// slow-query log). `None` on the hot default path — every recording
    /// site is a single `Option` check then.
    pub trace: Option<ssr_obs::TraceBuf>,
}

impl<'a> ExecCtx<'a> {
    /// A context with no memo, for the plain query entry points.
    pub fn detached() -> ExecCtx<'static> {
        ExecCtx {
            timings: StageTimings::default(),
            memo: None,
            verify_tau: None,
            trace: None,
        }
    }

    /// A context writing verified distances into `memo` under `query_key`.
    pub fn with_memo(memo: &'a VerificationMemo, query_key: usize) -> ExecCtx<'a> {
        ExecCtx {
            timings: StageTimings::default(),
            memo: Some((memo, query_key)),
            verify_tau: None,
            trace: None,
        }
    }

    /// Attaches a span trace with the given (deterministic) trace id.
    pub fn with_trace(mut self, trace_id: u64) -> Self {
        self.trace = Some(ssr_obs::TraceBuf::new(trace_id));
        self
    }

    /// Records a completed stage span when tracing is active.
    pub fn span(&mut self, name: &'static str, dur_ns: u64) {
        if let Some(trace) = self.trace.as_mut() {
            trace.record(name, dur_ns);
        }
    }

    /// Opens a nesting span when tracing is active; close with
    /// [`Self::span_end`]. Returns `usize::MAX` (ignored by `span_end`)
    /// when tracing is off.
    pub fn span_begin(&mut self, name: &'static str) -> usize {
        match self.trace.as_mut() {
            Some(trace) => trace.begin(name),
            None => usize::MAX,
        }
    }

    /// Closes a span opened by [`Self::span_begin`].
    pub fn span_end(&mut self, token: usize) {
        if let Some(trace) = self.trace.as_mut() {
            if token != usize::MAX {
                trace.end(token);
            }
        }
    }

    fn lookup(&self, sequence: SequenceId, q: &Range<usize>, x: &Range<usize>) -> Option<f64> {
        let (memo, key) = self.memo?;
        memo.get(key, sequence, q, x)
    }

    fn store(&self, sequence: SequenceId, q: &Range<usize>, x: &Range<usize>, distance: f64) {
        if let Some((memo, key)) = self.memo {
            memo.insert(key, sequence, q, x, distance);
        }
    }
}

/// Set of already-verified `(sequence, SQ range, SX range)` pairs: the
/// expansion grids of overlapping candidates repeat pairs, and each should be
/// verified (and charged against `max_verifications`) at most once.
#[derive(Default)]
struct PairSet(std::collections::HashSet<(SequenceId, usize, usize, usize, usize)>);

impl PairSet {
    /// Returns `true` when the pair is new.
    fn insert(&mut self, sequence: SequenceId, q: &Range<usize>, x: &Range<usize>) -> bool {
        self.0.insert((sequence, q.start, q.end, x.start, x.end))
    }
}

impl<E: Element + Send + Sync, D: SequenceDistance<E>> SubsequenceDatabase<E, D> {
    /// **Type I — range query.** Returns all pairs of similar subsequences:
    /// `|SX| ≥ λ`, `|SQ| ≥ λ`, `||SX| − |SQ|| ≤ λ0` and `δ(SQ, SX) ≤ ε`.
    ///
    /// As the paper notes, consistency implies that a single long match
    /// induces very many overlapping result pairs, so the result is capped at
    /// `max_results` (longest query subsequences first) and verification stops
    /// once `max_verifications` distance evaluations have been spent.
    pub fn query_type1(
        &self,
        query: &Sequence<E>,
        epsilon: f64,
    ) -> QueryOutcome<Vec<SubsequenceMatch>> {
        self.query_type1_ctx(query, epsilon, &mut ExecCtx::detached())
    }

    pub(crate) fn query_type1_ctx(
        &self,
        query: &Sequence<E>,
        epsilon: f64,
        ctx: &mut ExecCtx<'_>,
    ) -> QueryOutcome<Vec<SubsequenceMatch>> {
        let (candidates, mut stats) = self.prepare_candidates(query, epsilon, ctx);
        let verify_started = Instant::now();
        let cells_before = ssr_distance::dp_cells_thread_total();
        let prunes_before = ssr_distance::lower_bound_prunes_thread_total();
        let tau = ctx.verify_tau.unwrap_or(epsilon);
        let query_gap = self.query_gap_prefix(query);
        let mut results = Vec::new();
        let mut budget = self.config().max_verifications as u64;
        // Expansion grids of overlapping candidates repeat the same pairs;
        // verify (and charge the budget for) each pair only once.
        let mut seen = PairSet::default();
        'outer: for candidate in &candidates {
            let seq_len = match self.sequence(candidate.sequence) {
                Some(s) => s.len(),
                None => continue,
            };
            let pairs = enumerate_pairs(candidate, self.config(), query.len(), seq_len);
            for (q_range, x_range) in pairs {
                if !seen.insert(candidate.sequence, &q_range, &x_range) {
                    continue;
                }
                let d = match ctx.lookup(candidate.sequence, &q_range, &x_range) {
                    Some(d) => d,
                    None => {
                        if budget == 0 {
                            stats.budget_exhausted = true;
                            break 'outer;
                        }
                        budget -= 1;
                        stats.verification_calls += 1;
                        let d = self.verify_within(
                            query,
                            query_gap.as_ref(),
                            candidate.sequence,
                            &q_range,
                            &x_range,
                            tau,
                        );
                        ctx.store(candidate.sequence, &q_range, &x_range, d);
                        d
                    }
                };
                if d <= epsilon {
                    let m = SubsequenceMatch {
                        sequence: candidate.sequence,
                        db_range: x_range.clone(),
                        query_range: q_range.clone(),
                        distance: d,
                    };
                    if !results.contains(&m) {
                        results.push(m);
                        if results.len() >= self.config().max_results {
                            break 'outer;
                        }
                    }
                }
            }
        }
        results.sort_by(|a: &SubsequenceMatch, b: &SubsequenceMatch| {
            b.query_len().cmp(&a.query_len()).then(
                a.distance
                    .partial_cmp(&b.distance)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        });
        stats.dp_cells_evaluated += ssr_distance::dp_cells_thread_total() - cells_before;
        stats.pruned_by_lower_bound +=
            ssr_distance::lower_bound_prunes_thread_total() - prunes_before;
        let verify_ns = verify_started.elapsed().as_nanos() as u64;
        ctx.timings.verify_ns += verify_ns;
        ctx.span("verify", verify_ns);
        QueryOutcome {
            result: results,
            stats,
        }
    }

    /// **Type II — longest similar subsequence.** Maximises `|SQ|` subject to
    /// the same constraints as Type I.
    ///
    /// Candidates are verified longest-chain first and, within a candidate,
    /// longest query subsequence first, so the first verified pair of a given
    /// length is returned as soon as no longer pair remains unexplored.
    pub fn query_type2(
        &self,
        query: &Sequence<E>,
        epsilon: f64,
    ) -> QueryOutcome<Option<SubsequenceMatch>> {
        self.query_type2_ctx(query, epsilon, &mut ExecCtx::detached())
    }

    pub(crate) fn query_type2_ctx(
        &self,
        query: &Sequence<E>,
        epsilon: f64,
        ctx: &mut ExecCtx<'_>,
    ) -> QueryOutcome<Option<SubsequenceMatch>> {
        let (candidates, mut stats) = self.prepare_candidates(query, epsilon, ctx);
        let verify_started = Instant::now();
        let cells_before = ssr_distance::dp_cells_thread_total();
        let prunes_before = ssr_distance::lower_bound_prunes_thread_total();
        let tau = ctx.verify_tau.unwrap_or(epsilon);
        let query_gap = self.query_gap_prefix(query);
        let mut best: Option<SubsequenceMatch> = None;
        let mut budget = self.config().max_verifications as u64;
        let mut seen = PairSet::default();
        for candidate in &candidates {
            // A chain of k windows can support matches of length at most
            // (k + 2) * lambda / 2; skip candidates that cannot beat the best.
            if let Some(ref b) = best {
                let upper = (candidate.chain_len + 2) * self.config().window_len()
                    + self.config().max_shift;
                if upper <= b.query_len() {
                    continue;
                }
            }
            let seq_len = match self.sequence(candidate.sequence) {
                Some(s) => s.len(),
                None => continue,
            };
            let pairs = enumerate_pairs(candidate, self.config(), query.len(), seq_len);
            for (q_range, x_range) in pairs {
                if let Some(ref b) = best {
                    if q_range.end - q_range.start <= b.query_len() {
                        // Pairs are sorted by decreasing |SQ|; nothing better
                        // remains within this candidate.
                        break;
                    }
                }
                if !seen.insert(candidate.sequence, &q_range, &x_range) {
                    continue;
                }
                let d = match ctx.lookup(candidate.sequence, &q_range, &x_range) {
                    Some(d) => d,
                    None => {
                        if budget == 0 {
                            stats.budget_exhausted = true;
                            break;
                        }
                        budget -= 1;
                        stats.verification_calls += 1;
                        let d = self.verify_within(
                            query,
                            query_gap.as_ref(),
                            candidate.sequence,
                            &q_range,
                            &x_range,
                            tau,
                        );
                        ctx.store(candidate.sequence, &q_range, &x_range, d);
                        d
                    }
                };
                if d <= epsilon {
                    best = Some(SubsequenceMatch {
                        sequence: candidate.sequence,
                        db_range: x_range,
                        query_range: q_range,
                        distance: d,
                    });
                }
            }
            if stats.budget_exhausted {
                break;
            }
        }
        stats.dp_cells_evaluated += ssr_distance::dp_cells_thread_total() - cells_before;
        stats.pruned_by_lower_bound +=
            ssr_distance::lower_bound_prunes_thread_total() - prunes_before;
        let verify_ns = verify_started.elapsed().as_nanos() as u64;
        ctx.timings.verify_ns += verify_ns;
        ctx.span("verify", verify_ns);
        QueryOutcome {
            result: best,
            stats,
        }
    }

    /// **Type III — nearest pair.** Minimises `δ(SQ, SX)` subject to
    /// `|SX| ≥ λ`, `|SQ| ≥ λ` and `||SX| − |SQ|| ≤ λ0`.
    ///
    /// Implemented as the paper describes: a binary search over `ε` finds the
    /// smallest radius at which step 4 produces any matching segment pair,
    /// then verification is attempted at that radius, growing `ε` by
    /// `epsilon_increment` until a pair verifies.
    pub fn query_type3(
        &self,
        query: &Sequence<E>,
        epsilon_max: f64,
        epsilon_increment: f64,
    ) -> QueryOutcome<Option<SubsequenceMatch>> {
        self.query_type3_ctx(
            query,
            epsilon_max,
            epsilon_increment,
            &mut ExecCtx::detached(),
        )
    }

    pub(crate) fn query_type3_ctx(
        &self,
        query: &Sequence<E>,
        epsilon_max: f64,
        epsilon_increment: f64,
        ctx: &mut ExecCtx<'_>,
    ) -> QueryOutcome<Option<SubsequenceMatch>> {
        assert!(
            epsilon_increment > 0.0,
            "epsilon_increment must be positive"
        );
        let mut total_stats = QueryStats::default();
        // With a shared memo, verification outcomes survive from one radius
        // to the next, so the kernels must be thresholded at the *sweep's*
        // maximum — a pair beyond `epsilon_max` can never match at any radius
        // of this sweep and is memoised as `f64::INFINITY`. Without a memo
        // every radius re-verifies from scratch and prunes at its own `ε`.
        if ctx.memo.is_some() {
            ctx.verify_tau = Some(epsilon_max);
        }

        // Binary search for the smallest epsilon with a non-empty shortlist.
        let mut lo = 0.0f64;
        let mut hi = epsilon_max;
        let scan_at_max = self.matching_segments_ctx(query, epsilon_max, ctx);
        total_stats.index_distance_calls += scan_at_max.distance_calls;
        total_stats.dp_cells_evaluated += scan_at_max.dp_cells;
        total_stats.pruned_by_lower_bound += scan_at_max.pruned_by_lower_bound;
        if scan_at_max.is_empty() {
            return QueryOutcome {
                result: None,
                stats: total_stats,
            };
        }
        for _ in 0..20 {
            if hi - lo <= epsilon_increment / 2.0 {
                break;
            }
            let mid = (lo + hi) / 2.0;
            let scan = self.matching_segments_ctx(query, mid, ctx);
            total_stats.index_distance_calls += scan.distance_calls;
            total_stats.dp_cells_evaluated += scan.dp_cells;
            total_stats.pruned_by_lower_bound += scan.pruned_by_lower_bound;
            if scan.is_empty() {
                lo = mid;
            } else {
                hi = mid;
            }
        }

        // Grow epsilon from the smallest feasible radius until verification
        // succeeds; return the best (smallest-distance) verified pair found at
        // the first successful radius. Under a batch engine the shared memo
        // carries verified distances from one radius to the next, so each
        // revisited pair is verified only once across the whole sweep.
        let mut epsilon = hi;
        loop {
            let round = ctx.span_begin("epsilon_round");
            let outcome = self.query_type1_ctx(query, epsilon, ctx);
            ctx.span_end(round);
            total_stats.segments = outcome.stats.segments;
            total_stats.index_distance_calls += outcome.stats.index_distance_calls;
            total_stats.segment_matches = outcome.stats.segment_matches;
            total_stats.unique_windows = outcome.stats.unique_windows;
            total_stats.consecutive_windows = outcome.stats.consecutive_windows;
            total_stats.candidates = outcome.stats.candidates;
            total_stats.verification_calls += outcome.stats.verification_calls;
            total_stats.dp_cells_evaluated += outcome.stats.dp_cells_evaluated;
            total_stats.pruned_by_lower_bound += outcome.stats.pruned_by_lower_bound;
            total_stats.budget_exhausted |= outcome.stats.budget_exhausted;
            if let Some(best) = outcome.result.into_iter().min_by(|a, b| {
                a.distance
                    .partial_cmp(&b.distance)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }) {
                return QueryOutcome {
                    result: Some(best),
                    stats: total_stats,
                };
            }
            if epsilon >= epsilon_max {
                return QueryOutcome {
                    result: None,
                    stats: total_stats,
                };
            }
            epsilon = (epsilon + epsilon_increment).min(epsilon_max);
        }
    }

    /// Steps 3–5a shared by all query types: extract segments, run range
    /// queries, assemble chained candidates and fill in the statistics.
    fn prepare_candidates(
        &self,
        query: &Sequence<E>,
        epsilon: f64,
        ctx: &mut ExecCtx<'_>,
    ) -> (Vec<crate::candidates::Candidate>, QueryStats) {
        let spec = self.config().segment_spec();
        let scan = self.matching_segments_ctx(query, epsilon, ctx);
        let chain_started = Instant::now();
        let index_calls = scan.distance_calls;
        let matches = scan.matches;
        let mut unique_windows: Vec<usize> = matches.iter().map(|m| m.window.0).collect();
        unique_windows.sort_unstable();
        unique_windows.dedup();
        let candidates = build_candidates(
            &matches,
            self.config().window_len(),
            self.config().max_shift,
        );
        let chain_ns = chain_started.elapsed().as_nanos() as u64;
        ctx.timings.chain_ns += chain_ns;
        ctx.span("chain", chain_ns);
        let consecutive_windows: usize = candidates
            .iter()
            .filter(|c| c.chain_len >= 2)
            .map(|c| c.chain_len)
            .sum();
        let stats = QueryStats {
            segments: ssr_sequence::segment_count(query.len(), spec),
            index_distance_calls: index_calls,
            segment_matches: matches.len(),
            unique_windows: unique_windows.len(),
            consecutive_windows,
            candidates: candidates.len(),
            verification_calls: 0,
            dp_cells_evaluated: scan.dp_cells,
            pruned_by_lower_bound: scan.pruned_by_lower_bound,
            budget_exhausted: false,
        };
        (candidates, stats)
    }

    /// Computes the verified distance of one candidate subsequence pair,
    /// running the pruning cascade first: an exact length lower bound, then
    /// an exact gap-sum lower bound from the precomputed prefix tables (both
    /// `O(1)` per pair), then the threshold-aware kernel with `tau` clamped
    /// to the measure's `max_distance` so short pairs never get pointlessly
    /// wide bands. Returns `f64::INFINITY` for any pair whose distance
    /// exceeds `tau` — by construction such a pair can never be reported as
    /// a match, so the substitution is invisible in results.
    fn verify_within(
        &self,
        query: &Sequence<E>,
        query_gap: Option<&crate::database::GapPrefix>,
        sequence: SequenceId,
        q_range: &Range<usize>,
        x_range: &Range<usize>,
        tau: f64,
    ) -> f64 {
        let db_seq = self
            .sequence(sequence)
            .expect("candidate references a stored sequence");
        let q_len = q_range.end - q_range.start;
        let x_len = x_range.end - x_range.start;
        // Clamp: distances never exceed max_distance(len), so a wider band
        // cannot admit anything more (exactness argument in ISSUE/docs: a
        // prune against the clamped threshold implies a prune against the
        // unclamped one, because every distance is ≤ the clamp).
        let tau = match self.distance.max_distance(q_len.max(x_len)) {
            Some(bound) => tau.min(bound),
            None => tau,
        };
        if ssr_distance::pruning_enabled() {
            let mut lower = self.distance.length_lower_bound(q_len, x_len);
            if let (Some(qg), Some(prefixes)) = (query_gap, self.gap_prefixes.as_ref()) {
                if let (Some(sum_q), Some(sum_x)) = (
                    qg.range_sum(q_range),
                    prefixes.get(sequence.0).and_then(|p| p.range_sum(x_range)),
                ) {
                    lower = lower.max(self.distance.gap_sum_lower_bound(sum_q, sum_x));
                }
            }
            // `partial_cmp` spelled out so a NaN threshold prunes rather
            // than silently accepting.
            let within = matches!(
                lower.partial_cmp(&tau),
                Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
            );
            if !within {
                ssr_distance::record_lower_bound_prune();
                return f64::INFINITY;
            }
        }
        let (sq, sx) = pair_slices(query, db_seq, q_range, x_range);
        self.distance()
            .distance_within(sq, sx, tau)
            .unwrap_or(f64::INFINITY)
    }

    /// Prefix gap sums of the query, when the distance can exploit them
    /// (computed once per query execution, reused across every candidate
    /// pair — the database-side counterpart is built once at index time).
    fn query_gap_prefix(&self, query: &Sequence<E>) -> Option<crate::database::GapPrefix> {
        self.gap_prefixes
            .as_ref()
            .map(|_| crate::database::GapPrefix::build(query.elements()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FrameworkConfig, IndexBackend};
    use ssr_distance::Levenshtein;
    use ssr_sequence::Symbol;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    /// A small database where the query's middle part occurs (slightly
    /// mutated) inside the first sequence.
    fn planted_db() -> SubsequenceDatabase<Symbol, Levenshtein> {
        let config = FrameworkConfig::new(8).with_max_shift(1);
        SubsequenceDatabase::builder(config, Levenshtein::new())
            .add_sequence(seq("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
            .add_sequence(seq("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"))
            .build()
            .unwrap()
    }

    #[test]
    fn type2_finds_the_planted_subsequence() {
        let db = planted_db();
        // Query embeds ACDEFGHIKLMNPQRSTVWY (with one substitution) in noise.
        let query = seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY");
        let outcome = db.query_type2(&query, 3.0);
        let m = outcome.result.expect("planted match must be found");
        assert_eq!(m.sequence, SequenceId(0));
        assert!(m.query_len() >= 8);
        assert!(m.distance <= 3.0);
        // The reported database range overlaps the planted region 8..28.
        assert!(m.db_range.start < 28 && m.db_range.end > 8);
        assert!(outcome.stats.segments > 0);
        assert!(outcome.stats.segment_matches > 0);
        assert!(outcome.stats.candidates > 0);
        assert!(outcome.stats.verification_calls > 0);
    }

    #[test]
    fn type1_returns_multiple_overlapping_pairs() {
        let db = planted_db();
        let query = seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY");
        let outcome = db.query_type1(&query, 3.0);
        assert!(!outcome.result.is_empty());
        for m in &outcome.result {
            assert!(m.distance <= 3.0);
            assert!(m.query_len() >= 8);
            assert!(m.db_len() >= 8);
            assert!((m.query_len() as i64 - m.db_len() as i64).abs() <= 1);
        }
        // Longest results come first.
        for w in outcome.result.windows(2) {
            assert!(w[0].query_len() >= w[1].query_len());
        }
    }

    #[test]
    fn type2_returns_none_when_nothing_is_similar() {
        let db = planted_db();
        let query = seq("QQQQQQQQQQQQQQQQQQQQ");
        let outcome = db.query_type2(&query, 1.0);
        assert!(outcome.result.is_none());
    }

    #[test]
    fn type3_finds_the_minimal_distance_pair() {
        let db = planted_db();
        let query = seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY");
        let outcome = db.query_type3(&query, 10.0, 1.0);
        let m = outcome.result.expect("nearest pair exists");
        assert_eq!(m.sequence, SequenceId(0));
        // An exact copy of the planted region exists, so the nearest distance
        // must be very small.
        assert!(m.distance <= 1.0, "distance {}", m.distance);
    }

    #[test]
    fn type3_returns_none_when_even_epsilon_max_fails() {
        let db = planted_db();
        let query = seq("QQQQQQQQQQQQQQQQQQQQ");
        let outcome = db.query_type3(&query, 0.5, 0.25);
        assert!(outcome.result.is_none());
    }

    #[test]
    fn linear_scan_backend_gives_same_type2_answer_as_reference_net() {
        let config = FrameworkConfig::new(8).with_max_shift(1);
        let sequences = [
            "MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM",
            "WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW",
        ];
        let mut builders = Vec::new();
        for backend in [IndexBackend::ReferenceNet, IndexBackend::LinearScan] {
            let mut b = SubsequenceDatabase::builder(
                config.clone().with_backend(backend),
                Levenshtein::new(),
            );
            for s in &sequences {
                b = b.add_sequence(seq(s));
            }
            builders.push(b.build().unwrap());
        }
        let query = seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY");
        let a = builders[0].query_type2(&query, 3.0).result.unwrap();
        let b = builders[1].query_type2(&query, 3.0).result.unwrap();
        assert_eq!(a.query_len(), b.query_len());
        assert_eq!(a.sequence, b.sequence);
    }

    #[test]
    fn verification_budget_is_honoured() {
        let mut config = FrameworkConfig::new(8).with_max_shift(1);
        config.max_verifications = 5;
        let db = SubsequenceDatabase::builder(config, Levenshtein::new())
            .add_sequence(seq("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
            .build()
            .unwrap();
        let query = seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY");
        let outcome = db.query_type1(&query, 3.0);
        assert!(outcome.stats.verification_calls <= 5);
    }
}
