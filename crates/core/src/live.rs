//! Live (mutable, WAL-backed) databases: the durability layer over
//! [`SubsequenceDatabase::append_sequence`] / [`remove_sequence`].
//!
//! A [`LiveDatabase`] pairs a snapshot file with an append-only write-ahead
//! log (the `.wal` sibling, framed by [`ssr_storage::wal`]). Every mutation
//! is logged **before** it is applied in memory, so the on-disk pair always
//! determines the in-memory state: opening loads the last snapshot and
//! replays the log's typed operations ([`WalOp`]) on top of it, reaching —
//! bit-identically, results and stats — the state of the process that
//! crashed, however far it got. [`LiveDatabase::compact`] folds the log into
//! a fresh snapshot (atomically, via the snapshot layer's `.tmp` + rename)
//! and truncates the WAL back to an empty header.
//!
//! [`remove_sequence`]: SubsequenceDatabase::remove_sequence

use std::path::{Path, PathBuf};
use std::time::Instant;

use ssr_distance::SequenceDistance;
use ssr_sequence::{Element, Sequence, SequenceId};
use ssr_storage::{
    write_atomic, Decode, Encode, Reader, StorableElement, StorageError, WalBinding, WalWriter,
    Writer,
};

use crate::database::SubsequenceDatabase;

/// One logged mutation. The tag byte leads the payload so tooling (`ssr
/// info`) can classify records without instantiating the element type.
#[derive(Clone, PartialEq, Debug)]
pub enum WalOp<E> {
    /// A sequence appended to the database.
    Append {
        /// The sequence's label, if any.
        label: Option<String>,
        /// The sequence's elements.
        elements: Vec<E>,
    },
    /// A sequence tombstoned by its id.
    Remove {
        /// Id of the removed sequence.
        sequence: usize,
    },
}

/// Tag byte of an [`WalOp::Append`] payload.
pub const WAL_OP_APPEND: u8 = 0;
/// Tag byte of a [`WalOp::Remove`] payload.
pub const WAL_OP_REMOVE: u8 = 1;

impl<E: Encode> Encode for WalOp<E> {
    fn encode(&self, w: &mut Writer) {
        match self {
            WalOp::Append { label, elements } => {
                w.put_u8(WAL_OP_APPEND);
                label.encode(w);
                elements.encode(w);
            }
            WalOp::Remove { sequence } => {
                w.put_u8(WAL_OP_REMOVE);
                w.put_usize(*sequence);
            }
        }
    }
}

impl<E: Decode> Decode for WalOp<E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        match r.take_u8()? {
            WAL_OP_APPEND => Ok(WalOp::Append {
                label: Option::<String>::decode(r)?,
                elements: Vec::<E>::decode(r)?,
            }),
            WAL_OP_REMOVE => Ok(WalOp::Remove {
                sequence: r.take_usize()?,
            }),
            other => Err(StorageError::Malformed(format!(
                "unknown wal op tag {other}"
            ))),
        }
    }
}

impl<E: Encode> WalOp<E> {
    /// Serializes the op into one WAL record payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

impl<E: Decode> WalOp<E> {
    /// Decodes one WAL record payload, demanding exact consumption.
    pub fn from_payload(payload: &[u8]) -> Result<Self, StorageError> {
        let mut r = Reader::new(payload);
        let op = WalOp::decode(&mut r)?;
        r.expect_empty("wal op")?;
        Ok(op)
    }
}

/// Counts `(appends, removes)` over raw WAL record payloads by tag byte —
/// element-type-agnostic, so `ssr info` can report pending work for any
/// snapshot.
pub fn count_op_kinds(records: &[Vec<u8>]) -> Result<(usize, usize), StorageError> {
    let mut appends = 0;
    let mut removes = 0;
    for (i, payload) in records.iter().enumerate() {
        match payload.first() {
            Some(&WAL_OP_APPEND) => appends += 1,
            Some(&WAL_OP_REMOVE) => removes += 1,
            Some(&other) => {
                return Err(StorageError::Malformed(format!(
                    "wal record {i} has unknown op tag {other}"
                )))
            }
            None => {
                return Err(StorageError::Malformed(format!(
                    "wal record {i} has an empty payload"
                )))
            }
        }
    }
    Ok((appends, removes))
}

/// Path of the WAL sibling of a snapshot: the snapshot path with `.wal`
/// appended (not substituted, so `db.ssr` pairs with `db.ssr.wal`).
pub fn wal_path_for(snapshot_path: impl AsRef<Path>) -> PathBuf {
    let mut os = snapshot_path.as_ref().as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// Replays decoded WAL record payloads onto `db`, returning
/// `(appends, removes)`. Shared by [`LiveDatabase::open`] and the read-only
/// [`load_with_wal`]; replay is strict — an op that does not apply cleanly
/// is a typed error, never a silent skip.
fn apply_ops<E, D>(
    db: &mut SubsequenceDatabase<E, D>,
    records: &[Vec<u8>],
) -> Result<(usize, usize), StorageError>
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    let mut appends = 0;
    let mut removes = 0;
    for (i, payload) in records.iter().enumerate() {
        match WalOp::<E>::from_payload(payload)? {
            WalOp::Append { label, elements } => {
                let mut sequence = Sequence::new(elements);
                if let Some(label) = label {
                    sequence.set_label(label);
                }
                db.append_sequence(sequence);
                appends += 1;
            }
            WalOp::Remove { sequence } => {
                // Removals are only logged after validating the id against
                // the live set, so a failing replay means the log and
                // snapshot no longer belong together.
                if !db.remove_sequence(SequenceId(sequence)) {
                    return Err(StorageError::Malformed(format!(
                        "wal record {i} removes sequence {sequence}, which is unknown or already removed"
                    )));
                }
                removes += 1;
            }
        }
    }
    Ok((appends, removes))
}

/// Publishes open-time telemetry: snapshot decode and WAL replay wall-clock
/// as global gauges (and spans in the global trace ring, under trace id 0),
/// plus the replayed op count as the `ssr_wal_pending_ops` gauge — the ops
/// sitting in the log, not yet folded into the snapshot.
fn record_open_telemetry(snapshot_us: u64, replay_us: u64, pending_ops: usize) {
    let registry = ssr_obs::global();
    registry
        .gauge(
            "ssr_snapshot_load_us",
            "Wall-clock of the last snapshot decode, in microseconds.",
        )
        .set(snapshot_us as i64);
    registry
        .gauge(
            "ssr_wal_replay_us",
            "Wall-clock of the last WAL replay, in microseconds.",
        )
        .set(replay_us as i64);
    registry
        .gauge(
            "ssr_wal_pending_ops",
            "Logged operations not yet folded into the snapshot.",
        )
        .set(pending_ops as i64);
    let mut trace = ssr_obs::TraceBuf::new(0);
    trace.record("snapshot_load", snapshot_us.saturating_mul(1_000));
    trace.record("wal_replay", replay_us.saturating_mul(1_000));
    trace.flush_to(ssr_obs::trace_ring());
}

/// Read-only open: loads the snapshot at `path` and replays its WAL sibling
/// **without touching the disk** — no WAL is created when missing, no torn
/// tail is truncated, no stale log is reset. Returns the database plus the
/// number of ops replayed. This is what inspection paths (`ssr info`,
/// `ssr query`) use so that looking at a database never mutates its files.
pub fn load_with_wal<E, D>(
    path: impl AsRef<Path>,
    distance: D,
) -> Result<(SubsequenceDatabase<E, D>, usize), StorageError>
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let binding = ssr_storage::WalBinding::of(&bytes);
    let load_started = Instant::now();
    let mut db = SubsequenceDatabase::<E, D>::from_snapshot_bytes(bytes, distance)?;
    let snapshot_us = load_started.elapsed().as_micros() as u64;
    let replay_started = Instant::now();
    let records = match std::fs::read(wal_path_for(path)) {
        Ok(wal_bytes) => {
            let read = ssr_storage::decode_wal(&wal_bytes)?;
            // A log bound to a different snapshot is an interrupted
            // compaction's leftover: already folded, nothing to replay.
            if read.binding == Some(binding) {
                read.records
            } else {
                Vec::new()
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let (appends, removes) = apply_ops(&mut db, &records)?;
    record_open_telemetry(
        snapshot_us,
        replay_started.elapsed().as_micros() as u64,
        appends + removes,
    );
    Ok((db, appends + removes))
}

/// A snapshot + WAL pair open for reading and mutation.
///
/// All mutations go through this type (which logs them durably before
/// applying them); queries go through the shared reference returned by
/// [`Self::database`].
pub struct LiveDatabase<E: Element + StorableElement + Send + Sync, D: SequenceDistance<E>> {
    db: SubsequenceDatabase<E, D>,
    wal: WalWriter,
    snapshot_path: PathBuf,
    wal_path: PathBuf,
    pending_appends: usize,
    pending_removes: usize,
}

impl<E, D> LiveDatabase<E, D>
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    /// Writes `db` as a fresh snapshot at `path` with an empty WAL sibling
    /// (bound to that snapshot's identity) and takes ownership of the pair.
    pub fn create(
        path: impl AsRef<Path>,
        db: SubsequenceDatabase<E, D>,
    ) -> Result<Self, StorageError> {
        let snapshot_path = path.as_ref().to_path_buf();
        let bytes = db.snapshot_bytes();
        write_atomic(&snapshot_path, &bytes)?;
        let wal_path = wal_path_for(&snapshot_path);
        let wal = WalWriter::create(&wal_path, WalBinding::of(&bytes))?;
        Ok(LiveDatabase {
            db,
            wal,
            snapshot_path,
            wal_path,
            pending_appends: 0,
            pending_removes: 0,
        })
    }

    /// Opens the snapshot at `path` and replays its WAL sibling on top: the
    /// resulting in-memory state is the one the last process reached before
    /// exiting (or crashing — a torn log tail is truncated away by the WAL
    /// layer, and the operations before it replay byte-exactly). A missing
    /// WAL means no pending mutations, and a WAL bound to a *different*
    /// snapshot (the leftover of a compaction interrupted between its
    /// snapshot rename and its log truncation) is discarded, not replayed —
    /// its records are already folded into the snapshot being opened.
    pub fn open(path: impl AsRef<Path>, distance: D) -> Result<Self, StorageError> {
        let snapshot_path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&snapshot_path)?;
        let binding = WalBinding::of(&bytes);
        let load_started = Instant::now();
        let mut db = SubsequenceDatabase::<E, D>::from_snapshot_bytes(bytes, distance)?;
        let snapshot_us = load_started.elapsed().as_micros() as u64;
        let wal_path = wal_path_for(&snapshot_path);
        let replay_started = Instant::now();
        let (wal, records) = WalWriter::open(&wal_path, binding)?;
        let (pending_appends, pending_removes) = apply_ops(&mut db, &records)?;
        record_open_telemetry(
            snapshot_us,
            replay_started.elapsed().as_micros() as u64,
            pending_appends + pending_removes,
        );
        Ok(LiveDatabase {
            db,
            wal,
            snapshot_path,
            wal_path,
            pending_appends,
            pending_removes,
        })
    }

    /// Appends a sequence: logged durably first, then applied in memory (see
    /// [`SubsequenceDatabase::append_sequence`] for the incremental index
    /// maintenance). Returns the id the sequence is stored under.
    pub fn append_sequence(&mut self, sequence: Sequence<E>) -> Result<SequenceId, StorageError> {
        let op = WalOp::Append {
            label: sequence.label().map(str::to_string),
            elements: sequence.elements().to_vec(),
        };
        self.wal.append(&op.to_payload())?;
        self.pending_appends += 1;
        self.publish_pending_gauge();
        Ok(self.db.append_sequence(sequence))
    }

    /// Tombstones a sequence. Unknown or already-removed ids return
    /// `Ok(false)` **without** writing a log record — the WAL only ever
    /// holds operations that applied, which is what makes replay total.
    pub fn remove_sequence(&mut self, id: SequenceId) -> Result<bool, StorageError> {
        if !self.db.is_live(id) {
            return Ok(false);
        }
        let op = WalOp::<E>::Remove { sequence: id.0 };
        self.wal.append(&op.to_payload())?;
        self.pending_removes += 1;
        self.publish_pending_gauge();
        let removed = self.db.remove_sequence(id);
        debug_assert!(removed, "is_live guaranteed the removal applies");
        Ok(removed)
    }

    /// Folds the WAL into a fresh snapshot: saves the current in-memory
    /// state (atomically — `.tmp` then rename) and truncates the log,
    /// rebinding it to the new snapshot's identity. A crash between the two
    /// steps is safe: the surviving log still names the *old* snapshot, so
    /// the next [`Self::open`] detects the stale binding and discards it
    /// instead of double-applying records the new snapshot already contains.
    ///
    /// # Failpoints
    ///
    /// `live.compact` fires in exactly that window — after the new snapshot
    /// is durably renamed into place but before the WAL is rebound — so
    /// chaos tests can exercise the stale-binding recovery path on demand.
    pub fn compact(&mut self) -> Result<(), StorageError> {
        let bytes = self.db.snapshot_bytes();
        write_atomic(&self.snapshot_path, &bytes)?;
        if ssr_fault::evaluate("live.compact").is_some() {
            return Err(ssr_fault::injected_io_error("live.compact").into());
        }
        self.wal.reset(WalBinding::of(&bytes))?;
        self.pending_appends = 0;
        self.pending_removes = 0;
        self.publish_pending_gauge();
        Ok(())
    }

    /// Mirrors [`Self::pending_ops`] into the global `ssr_wal_pending_ops`
    /// gauge after every mutation and compaction.
    fn publish_pending_gauge(&self) {
        ssr_obs::global()
            .gauge(
                "ssr_wal_pending_ops",
                "Logged operations not yet folded into the snapshot.",
            )
            .set(self.pending_ops() as i64);
    }

    /// The in-memory database (queries go through this reference).
    pub fn database(&self) -> &SubsequenceDatabase<E, D> {
        &self.db
    }

    /// Consumes the pair, returning the in-memory database.
    pub fn into_database(self) -> SubsequenceDatabase<E, D> {
        self.db
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> &Path {
        &self.snapshot_path
    }

    /// Path of the WAL sibling.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Number of logged operations not yet folded into the snapshot.
    pub fn pending_ops(&self) -> usize {
        self.pending_appends + self.pending_removes
    }

    /// Pending appends not yet folded into the snapshot.
    pub fn pending_appends(&self) -> usize {
        self.pending_appends
    }

    /// Pending removals not yet folded into the snapshot.
    pub fn pending_removes(&self) -> usize {
        self.pending_removes
    }

    /// Current WAL length in bytes.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;
    use ssr_distance::Levenshtein;
    use ssr_sequence::Symbol;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    fn temp_snapshot(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ssr-live-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.ssr", std::process::id()))
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(wal_path_for(path));
    }

    fn base_db() -> SubsequenceDatabase<Symbol, Levenshtein> {
        SubsequenceDatabase::builder(
            FrameworkConfig::new(8).with_max_shift(1),
            Levenshtein::new(),
        )
        .add_sequence(seq("ACDEFGHIKLMNPQRSTVWY"))
        .build()
        .unwrap()
    }

    #[test]
    fn wal_op_codec_roundtrips() {
        let ops = [
            WalOp::Append {
                label: Some("s1".into()),
                elements: seq("ACGT").elements().to_vec(),
            },
            WalOp::Append {
                label: None,
                elements: Vec::new(),
            },
            WalOp::<Symbol>::Remove { sequence: 3 },
        ];
        for op in &ops {
            let payload = op.to_payload();
            assert_eq!(&WalOp::<Symbol>::from_payload(&payload).unwrap(), op);
        }
        let (appends, removes) =
            count_op_kinds(&ops.iter().map(WalOp::to_payload).collect::<Vec<_>>()).unwrap();
        assert_eq!((appends, removes), (2, 1));
        assert!(WalOp::<Symbol>::from_payload(&[9]).is_err());
        assert!(count_op_kinds(&[vec![9]]).is_err());
    }

    #[test]
    fn mutations_survive_reopen_and_compaction() {
        let path = temp_snapshot("lifecycle");
        cleanup(&path);
        let mut live = LiveDatabase::create(&path, base_db()).unwrap();
        let mut tail = seq("ACDEFGHI");
        tail.set_label("tail");
        live.append_sequence(tail).unwrap();
        assert!(live.remove_sequence(SequenceId(0)).unwrap());
        assert!(!live.remove_sequence(SequenceId(0)).unwrap());
        assert_eq!(live.pending_ops(), 2);
        let reference_scan = live.database().matching_segments(&seq("ACDEFGHI"), 1.0);
        drop(live);

        // Reopen: replay reaches the same state.
        let live = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).unwrap();
        assert_eq!(live.pending_appends(), 1);
        assert_eq!(live.pending_removes(), 1);
        assert_eq!(live.database().live_sequence_count(), 1);
        assert_eq!(
            live.database().matching_segments(&seq("ACDEFGHI"), 1.0),
            reference_scan
        );

        // Compact: WAL folds into the snapshot; a reopen replays nothing.
        let mut live = live;
        live.compact().unwrap();
        assert_eq!(live.pending_ops(), 0);
        drop(live);
        let live = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).unwrap();
        assert_eq!(live.pending_ops(), 0);
        assert_eq!(live.database().live_sequence_count(), 1);
        assert_eq!(
            live.database().matching_segments(&seq("ACDEFGHI"), 1.0),
            reference_scan
        );
        cleanup(&path);
    }

    #[test]
    fn interrupted_compaction_does_not_double_apply() {
        let path = temp_snapshot("interrupted");
        cleanup(&path);
        let mut live = LiveDatabase::create(&path, base_db()).unwrap();
        live.append_sequence(seq("ACDEFGHI")).unwrap();
        // Simulate a compaction crashing between its two steps: the folded
        // snapshot lands, the WAL truncation never happens.
        live.database().save_snapshot(&path).unwrap();
        drop(live);
        let live = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).unwrap();
        // The stale log's append is already in the snapshot; replaying it
        // would duplicate the sequence. The binding check discards it.
        assert_eq!(live.pending_ops(), 0);
        assert_eq!(live.database().dataset().len(), 2);
        cleanup(&path);
    }

    #[test]
    fn missing_wal_means_no_pending_mutations() {
        let path = temp_snapshot("nowal");
        cleanup(&path);
        base_db().save_snapshot(&path).unwrap();
        let live = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).unwrap();
        assert_eq!(live.pending_ops(), 0);
        assert_eq!(live.database().dataset().len(), 1);
        cleanup(&path);
    }
}
