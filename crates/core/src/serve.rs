//! A concurrent query server over a loaded [`SubsequenceDatabase`].
//!
//! Dependency-free serving on `std` TCP: one accept loop, one lightweight
//! thread per connection, and a fixed pool of query workers behind a bounded
//! admission queue. Messages travel as [`crate::wire`] payloads inside the
//! shared [`ssr_storage::frame`] framing.
//!
//! The moving parts, and why each exists:
//!
//! * **Admission control** — connection threads never execute queries; they
//!   submit jobs to a bounded queue. A full queue rejects *immediately*
//!   with [`WireError::Overloaded`] instead of letting latency collapse
//!   under unbounded buffering: the client learns to back off while the
//!   server keeps answering `Ping`/`Stats` (which bypass the queue).
//! * **Result cache** — a mutex-sharded map ([`ShardedMemo`]) keyed by the
//!   *encoded query bytes* plus the query spec's tag and radius bits.
//!   Repeated queries (the common case under multi-user traffic) replay the
//!   originally computed outcome — matches *and* stats — bit-identically,
//!   flagged `cached` on the wire. Keys hold the full encoded bytes rather
//!   than a hash, so a collision can at worst waste memory, never serve a
//!   wrong result. Eviction is coarse (a full shard clears) and bounded by
//!   `cache_shards × cache_shard_capacity`.
//! * **Replicas** — each worker queries a [`SubsequenceDatabase::clone_replica`]
//!   chosen by `worker_id % replicas`. Replicas share the element arena, the
//!   window store, the dataset and the gap-prefix tables (the bytes that
//!   dominate residency) and duplicate only the index navigation structure
//!   plus private query counters, so workers never contend on the shared
//!   counter atomics.
//!
//! Every query is executed by the same [`QueryEngine`] the in-process API
//! uses, one batch per request, so served results are **bit-identical** to
//! in-process results — `tests/serve_parity.rs` holds that line.
//!
//! **Failure posture.** Worker threads wrap each job in `catch_unwind`, so a
//! panic inside one query poisons nothing: the job's reply channel drops
//! (the waiting connection answers [`WireError::Internal`]) and the worker
//! keeps serving. Connections that stall mid-frame past the read timeout
//! are counted and closed with a typed [`WireError::Malformed`] — a slow
//! peer cannot pin a connection thread forever. A wire
//! [`Request::Shutdown`] *drains*: in-flight jobs finish, new queries are
//! refused with [`WireError::Draining`] (`Ping`/`Stats`/`Metrics` still
//! answer, so probes keep working), and the server exits once the last
//! worker runs dry. Failpoints (`serve.accept`, `serve.frame_read`,
//! `serve.frame_write`, `serve.worker`) let chaos tests force each of these
//! paths deterministically.

use std::collections::VecDeque;
use std::io::Write;
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ssr_distance::SequenceDistance;
use ssr_sequence::{Element, Sequence};
use ssr_storage::{read_frame, write_frame, Encode, StorableElement, StorageError, Writer};

use crate::batch::QueryEngine;
use crate::database::SubsequenceDatabase;
use crate::parallel::{resolve_threads, ShardedMemo};
use crate::query::{QueryStats, SubsequenceMatch};
use crate::wire::{QuerySpec, Request, Response, ServerStatsSnapshot, WireError, WireOutcome};

/// Tuning knobs of [`Server::bind`]. The defaults suit a smoke-scale CI
/// deployment; production would raise the cache and queue bounds.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Query worker threads; `0` means one per available hardware thread.
    pub workers: usize,
    /// Read-only database replicas the workers rotate over (min 1).
    pub replicas: usize,
    /// Maximum query jobs waiting for a worker. `0` refuses every job —
    /// useful to test overload handling deterministically.
    pub queue_depth: usize,
    /// Mutex shards of the result cache.
    pub cache_shards: usize,
    /// Entries one cache shard holds before it evicts (coarsely, by
    /// clearing). Total cache bound: `cache_shards × cache_shard_capacity`.
    pub cache_shard_capacity: usize,
    /// Per-connection socket read timeout. A connection that stalls
    /// mid-frame longer than this is dropped — the stream offset can no
    /// longer be trusted, so there is nothing useful to answer.
    pub read_timeout: Option<Duration>,
    /// Largest frame payload accepted before the payload is read.
    pub max_frame_len: usize,
    /// Slow-query log threshold in milliseconds. `Some(ms)` span-traces
    /// every request (server spans plus the engine's per-stage spans, all
    /// flushed into [`ssr_obs::trace_ring`]) and dumps the span tree and
    /// statistics of any query slower than `ms` to stderr. `None` (the
    /// default) records no traces.
    pub slow_query_ms: Option<u64>,
    /// Name this server answers to on the [`ssr_fault::node_killed`] kill
    /// switch. While the named switch is thrown the server models a crashed
    /// process: new connections are dropped at accept and in-flight
    /// connections are abandoned mid-stream, with no response either way —
    /// but the listener keeps its port, so [`ssr_fault::revive_node`] is an
    /// instant, deterministic "restart". `None` (the default) opts out
    /// entirely; production servers pay one relaxed atomic load per check.
    pub node_name: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            replicas: 1,
            queue_depth: 64,
            cache_shards: 16,
            cache_shard_capacity: 256,
            read_timeout: Some(Duration::from_secs(30)),
            max_frame_len: 16 * 1024 * 1024,
            slow_query_ms: None,
            node_name: None,
        }
    }
}

/// Why [`BoundedQueue::try_push`] refused a job.
enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed (server shutting down).
    Closed,
}

/// A minimal bounded MPMC queue: `Mutex<VecDeque>` + `Condvar`. Producers
/// never block — admission control wants an immediate full/closed verdict —
/// and consumers block in [`BoundedQueue::pop`] until a job or close
/// arrives.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking push; `Err(Full)` is the admission-control reject.
    fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item arrives; `None` once closed and drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
    }

    /// Closes the queue: producers get `Closed`, consumers drain then stop.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Jobs currently waiting for a worker (the admission-queue depth the
    /// `ssr_queue_depth` gauge reports at scrape time).
    fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }
}

/// Result-cache key: the query's encoded element bytes plus the spec's tag
/// and radius bits. Full bytes, not a hash — elements (trajectory floats)
/// are not hashable in general, and byte keys make collisions impossible.
type CacheKey = (Vec<u8>, u8, u64, u64);

/// A cached outcome: matches and stats behind one `Arc` so cache hits clone
/// a pointer, not a result set.
type CachedOutcome = Arc<(Vec<SubsequenceMatch>, QueryStats)>;

fn cache_key<E: Encode>(elements: &[E], spec: &QuerySpec) -> CacheKey {
    let mut w = Writer::new();
    w.put_usize(elements.len());
    for e in elements {
        e.encode(&mut w);
    }
    let (radius, increment) = spec.radius_bits();
    (w.into_bytes(), spec.tag(), radius, increment)
}

/// Estimated resident bytes of the result cache: encoded key bytes plus the
/// match vectors, with a fixed per-entry overhead for the key tuple, the
/// stats and the `Arc` bookkeeping. An estimate — capacities and allocator
/// slack are deliberately ignored so the figure is deterministic.
fn cache_bytes_estimate(cache: &ShardedMemo<CacheKey, CachedOutcome>) -> u64 {
    cache.fold(0u64, |acc, key, outcome| {
        let key_bytes = key.0.len() + std::mem::size_of::<CacheKey>();
        let match_bytes = outcome.0.len() * std::mem::size_of::<SubsequenceMatch>();
        let fixed = std::mem::size_of::<(Vec<SubsequenceMatch>, QueryStats)>();
        acc + (key_bytes + match_bytes + fixed) as u64
    })
}

/// One admitted unit of work: the uncached queries of one request batch.
struct QueryJob<E> {
    spec: QuerySpec,
    queries: Vec<Sequence<E>>,
    keys: Vec<CacheKey>,
    reply: mpsc::Sender<Vec<CachedOutcome>>,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared<E: Element, D: SequenceDistance<E>> {
    replicas: Vec<SubsequenceDatabase<E, D>>,
    queue: BoundedQueue<QueryJob<E>>,
    cache: ShardedMemo<CacheKey, CachedOutcome>,
    config: ServeConfig,
    workers: usize,
    shutdown: AtomicBool,
    /// Set by [`Shared::begin_drain`]: refuse new queries, finish in-flight
    /// ones, exit when the last worker runs dry.
    draining: AtomicBool,
    /// Worker threads still running; the last one out completes a drain.
    active_workers: AtomicUsize,
    /// Jobs whose execution panicked (caught; the worker kept serving).
    worker_panics: AtomicU64,
    /// Connections dropped because a read stalled past the timeout.
    connection_timeouts: AtomicU64,
    local_addr: SocketAddr,
    queries_executed: AtomicU64,
    queries_answered: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected_overload: AtomicU64,
    /// When the server bound its socket; origin of `uptime_ms`.
    started: Instant,
    /// Server-owned metrics registry: holds the series that must accumulate
    /// across requests (today just the request-latency histogram — the
    /// counter families are rendered from the atomics above at scrape time).
    registry: ssr_obs::Registry,
    /// Wall-clock of each served `Query` request, in microseconds. A handle
    /// into `registry`, resolved once at bind.
    request_duration: ssr_obs::Histogram,
    /// `ssr_draining` gauge (0/1) in `registry`, resolved once at bind so a
    /// scrape can watch a drain progress.
    draining_gauge: ssr_obs::Gauge,
    /// Monotonic ids for server-side request traces (slow-query log).
    trace_ids: AtomicU64,
}

impl<E, D> Shared<E, D>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    fn stats_snapshot(&self) -> ServerStatsSnapshot {
        let db = &self.replicas[0];
        ServerStatsSnapshot {
            sequences: db.dataset().len(),
            windows: db.window_count(),
            arena_bytes: db.windows().arena().resident_bytes(),
            workers: self.workers,
            replicas: self.replicas.len(),
            queries_executed: self.queries_executed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_entries: self.cache.len(),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            cache_bytes_estimate: cache_bytes_estimate(&self.cache),
        }
    }

    /// Renders the full Prometheus exposition: the server registry (the
    /// cumulative request-latency histogram), a scrape-time registry built
    /// from the server's atomics / per-shard cache tallies / per-replica
    /// counters, and the process-global registry (index probe depth, WAL
    /// and snapshot gauges). The three hold disjoint family names, so the
    /// concatenation is a valid exposition.
    fn render_metrics(&self) -> String {
        let mut out = self.registry.render();
        let scrape = ssr_obs::Registry::new();
        scrape
            .counter(
                "ssr_queries_executed_total",
                "Queries executed by the worker pool (cache misses only).",
            )
            .add(self.queries_executed.load(Ordering::Relaxed));
        scrape
            .counter(
                "ssr_queries_answered_total",
                "Queries answered with outcomes, cache hits included.",
            )
            .add(self.queries_answered.load(Ordering::Relaxed));
        scrape
            .counter("ssr_cache_hits_total", "Result-cache lookup hits.")
            .add(self.cache_hits.load(Ordering::Relaxed));
        scrape
            .counter("ssr_cache_misses_total", "Result-cache lookup misses.")
            .add(self.cache_misses.load(Ordering::Relaxed));
        scrape
            .counter(
                "ssr_overload_rejections_total",
                "Requests rejected because the admission queue was full.",
            )
            .add(self.rejected_overload.load(Ordering::Relaxed));
        scrape
            .gauge("ssr_queue_depth", "Query jobs waiting for a worker.")
            .set(self.queue.len() as i64);
        scrape
            .counter(
                "ssr_worker_panics_total",
                "Query jobs whose execution panicked (caught; worker kept serving).",
            )
            .add(self.worker_panics.load(Ordering::Relaxed));
        scrape
            .counter(
                "ssr_connection_timeouts_total",
                "Connections dropped because a read stalled past the timeout.",
            )
            .add(self.connection_timeouts.load(Ordering::Relaxed));
        scrape
            .gauge("ssr_uptime_ms", "Milliseconds since the server bound.")
            .set(self.started.elapsed().as_millis() as i64);
        scrape
            .gauge("ssr_cache_entries", "Resident result-cache entries.")
            .set(self.cache.len() as i64);
        scrape
            .gauge(
                "ssr_cache_bytes_estimate",
                "Estimated resident bytes of the result cache.",
            )
            .set(cache_bytes_estimate(&self.cache) as i64);
        for (i, stats) in self.cache.shard_stats().iter().enumerate() {
            let label = Some(("shard", i.to_string()));
            scrape
                .counter_with(
                    "ssr_cache_shard_hits_total",
                    "Result-cache hits per shard.",
                    label.clone(),
                )
                .add(stats.hits);
            scrape
                .counter_with(
                    "ssr_cache_shard_misses_total",
                    "Result-cache misses per shard.",
                    label.clone(),
                )
                .add(stats.misses);
            scrape
                .counter_with(
                    "ssr_cache_shard_evictions_total",
                    "Entries dropped by per-shard eviction.",
                    label,
                )
                .add(stats.evicted);
        }
        for (i, replica) in self.replicas.iter().enumerate() {
            let label = Some(("replica", i.to_string()));
            scrape
                .counter_with(
                    "ssr_replica_distance_calls_total",
                    "Query-time distance evaluations inside the index, per replica.",
                    label.clone(),
                )
                .add(replica.query_distance_counter().get());
            scrape
                .counter_with(
                    "ssr_replica_dp_cells_total",
                    "Query-time DP cells evaluated inside the index, per replica.",
                    label,
                )
                .add(replica.query_dp_cell_counter().get());
        }
        out.push_str(&scrape.render());
        out.push_str(&ssr_obs::global().render());
        out
    }

    /// Flips the shutdown flag, closes the queue and nudges the accept loop
    /// awake with a throwaway self-connection. Idempotent.
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        // `accept` has no timeout; a self-connect is the portable wake-up.
        drop(TcpStream::connect(self.local_addr));
    }

    /// Starts a graceful drain: raises the `ssr_draining` gauge, closes the
    /// admission queue (in-flight jobs finish; new queries are answered
    /// [`WireError::Draining`]) and lets the last worker to run dry complete
    /// the shutdown. Idempotent.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.draining_gauge.set(1);
        self.queue.close();
    }
}

/// A running query server. Dropping the handle does **not** stop the server;
/// call [`Server::shutdown`] (or send [`Request::Shutdown`] over the wire).
pub struct Server<E: Element, D: SequenceDistance<E>> {
    shared: Arc<Shared<E, D>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl<E, D> Server<E, D>
where
    E: Element + StorableElement + Send + Sync + 'static,
    D: SequenceDistance<E> + Send + Sync + 'static,
{
    /// Binds `addr`, builds `config.replicas` read-only replicas of `db` and
    /// starts the accept loop plus the worker pool. Returns once the socket
    /// is listening — [`Server::local_addr`] is immediately connectable.
    pub fn bind(
        db: SubsequenceDatabase<E, D>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = resolve_threads(config.workers);
        let mut replicas = Vec::with_capacity(config.replicas.max(1));
        replicas.push(db);
        for _ in 1..config.replicas.max(1) {
            replicas.push(replicas[0].clone_replica());
        }
        let registry = ssr_obs::Registry::new();
        let request_duration = registry.histogram(
            "ssr_request_duration_us",
            "Server-side wall clock of each Query request, in microseconds.",
        );
        let draining_gauge = registry.gauge(
            "ssr_draining",
            "1 while the server drains in-flight work before exiting.",
        );
        let shared = Arc::new(Shared {
            replicas,
            queue: BoundedQueue::new(config.queue_depth),
            cache: ShardedMemo::new(config.cache_shards),
            workers,
            config,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            active_workers: AtomicUsize::new(workers),
            worker_panics: AtomicU64::new(0),
            connection_timeouts: AtomicU64::new(0),
            local_addr,
            queries_executed: AtomicU64::new(0),
            queries_answered: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            started: Instant::now(),
            registry,
            request_duration,
            draining_gauge,
            trace_ids: AtomicU64::new(1),
        });

        let mut threads = Vec::with_capacity(workers + 1);
        for worker_id in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ssr-worker-{worker_id}"))
                    .spawn(move || worker_loop(&shared, worker_id))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ssr-accept".to_string())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        Ok(Server { shared, threads })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The server's counter snapshot, as [`Request::Stats`] would report.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Stops accepting, drains admitted jobs and joins every server thread.
    /// Open connections die on their next read (reset or timeout).
    pub fn shutdown(self) {
        self.shared.begin_shutdown();
        for handle in self.threads {
            let _ = handle.join();
        }
    }

    /// Gracefully drains and then stops: in-flight and already-admitted
    /// jobs finish, new queries are refused with [`WireError::Draining`]
    /// (probes still answer), and once the last worker runs dry the server
    /// shuts down. Blocks until every server thread has exited. This is
    /// what a wire [`Request::Shutdown`] triggers remotely.
    pub fn drain(self) {
        self.shared.begin_drain();
        for handle in self.threads {
            let _ = handle.join();
        }
    }

    /// Blocks until the server stops some other way — a wire
    /// [`Request::Shutdown`], typically. This is `ssr serve`'s foreground
    /// mode: bind, print the address, then park here.
    pub fn wait(self) {
        for handle in self.threads {
            let _ = handle.join();
        }
    }
}

fn accept_loop<E, D>(listener: &TcpListener, shared: &Arc<Shared<E, D>>)
where
    E: Element + StorableElement + Send + Sync + 'static,
    D: SequenceDistance<E> + Send + Sync + 'static,
{
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Chaos hook: a fired `serve.accept` drops the fresh connection on
        // the floor, as an accept-time resource failure would.
        if ssr_fault::evaluate("serve.accept").is_some() {
            continue;
        }
        // Node-level kill switch: while this named node is "killed", every
        // fresh connection dies unanswered — the client sees the reset a
        // crashed process would produce, but the port stays bound so a
        // revive is an instant restart.
        if let Some(name) = &shared.config.node_name {
            if ssr_fault::node_killed(name) {
                continue;
            }
        }
        let shared = Arc::clone(shared);
        // Connection threads are detached: they exit on client disconnect,
        // read timeout or queue closure, and hold nothing but the shared
        // state, so shutdown never needs to join them.
        let _ = std::thread::Builder::new()
            .name("ssr-conn".to_string())
            .spawn(move || connection_loop(stream, &shared));
    }
}

/// Per-connection read→dispatch→respond loop. Frame-level damage answers a
/// typed error and closes (the stream offset is untrustworthy); payload-level
/// damage answers a typed error and keeps the connection usable.
fn connection_loop<E, D>(mut stream: TcpStream, shared: &Arc<Shared<E, D>>)
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E> + Send + Sync,
{
    if stream.set_read_timeout(shared.config.read_timeout).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    loop {
        // Chaos hook: a fired `serve.frame_read` behaves like the peer
        // vanishing mid-frame — the connection closes without an answer.
        if ssr_fault::evaluate("serve.frame_read").is_some() {
            return;
        }
        // A killed node abandons persistent connections too: a client that
        // connected before the "crash" must not keep getting answers.
        if let Some(name) = &shared.config.node_name {
            if ssr_fault::node_killed(name) {
                return;
            }
        }
        let payload = match read_frame(&mut stream, shared.config.max_frame_len) {
            Ok(Some(payload)) => payload,
            // Clean EOF between frames: the client hung up.
            Ok(None) => return,
            Err(StorageError::Io(err))
                if matches!(
                    err.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // The peer stalled past the read timeout (slowloris or a
                // dead link). Count it and answer a typed refusal
                // best-effort — the write side usually still works — then
                // close: the stream offset cannot be trusted any more.
                shared.connection_timeouts.fetch_add(1, Ordering::Relaxed);
                let error = Response::Error(WireError::Malformed(
                    "read timed out mid-frame; closing connection".into(),
                ));
                let _ = respond(&mut stream, &error, crate::wire::WIRE_VERSION_MIN);
                return;
            }
            Err(StorageError::Io(_)) => return,
            Err(err) => {
                let error = Response::Error(WireError::from_storage(&err));
                // An undecodable frame carries no version; answer at the
                // floor so any peer can decode the error.
                let _ = respond(&mut stream, &error, crate::wire::WIRE_VERSION_MIN);
                return;
            }
        };
        // Re-check the kill switch *after* the read: a thread parked in
        // `read_frame` when the kill landed wakes holding a request — a
        // crashed process would never answer it, so neither do we.
        if let Some(name) = &shared.config.node_name {
            if ssr_fault::node_killed(name) {
                return;
            }
        }
        // Answers echo the request's wire version, so a v1 peer gets v1
        // response bodies back and never sees fields it cannot decode.
        let (version, request) = match Request::<E>::decode_payload_versioned(&payload) {
            Ok(decoded) => decoded,
            Err(err) => {
                let error = Response::Error(WireError::from_storage(&err));
                if respond(&mut stream, &error, crate::wire::WIRE_VERSION_MIN).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Stats => Response::Stats(shared.stats_snapshot()),
            Request::Metrics => Response::Metrics(shared.render_metrics()),
            Request::Shutdown => {
                // Shutdown over the wire is a *drain*: ack, stop admitting,
                // let in-flight work finish; the last worker to run dry
                // completes the shutdown.
                let _ = respond(&mut stream, &Response::ShuttingDown, version);
                shared.begin_drain();
                return;
            }
            // Probes above still answer during a drain; only new query
            // batches are refused, with the typed retry-elsewhere error.
            Request::Query { .. } if shared.draining.load(Ordering::SeqCst) => {
                Response::Error(WireError::Draining)
            }
            Request::Query { spec, queries } => {
                let started = Instant::now();
                let response = answer_query(shared, spec, queries);
                shared
                    .request_duration
                    .observe(started.elapsed().as_micros() as u64);
                response
            }
        };
        if respond(&mut stream, &response, version).is_err() {
            return;
        }
    }
}

fn respond(stream: &mut TcpStream, response: &Response, version: u8) -> Result<(), StorageError> {
    // Chaos hook: a fired `serve.frame_write` fails the response write, as
    // a peer resetting the connection mid-reply would.
    if ssr_fault::evaluate("serve.frame_write").is_some() {
        return Err(StorageError::Io(ssr_fault::injected_io_error(
            "serve.frame_write",
        )));
    }
    write_frame(stream, &response.encode_payload_versioned(version))?;
    stream.flush().map_err(StorageError::Io)
}

/// Splits a request batch into cache hits and misses, admits the misses as
/// one job and reassembles outcomes in request order.
fn answer_query<E, D>(shared: &Arc<Shared<E, D>>, spec: QuerySpec, queries: Vec<Vec<E>>) -> Response
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    // Server-side spans (cache probe, admission wait) ride into the global
    // trace ring whenever the slow-query log is on. Request trace ids are a
    // monotonic tally — distinct from the engine's per-batch slot ids.
    let mut trace = shared
        .config
        .slow_query_ms
        .map(|_| ssr_obs::TraceBuf::new(shared.trace_ids.fetch_add(1, Ordering::Relaxed)));
    let probe_started = Instant::now();
    let keys: Vec<CacheKey> = queries.iter().map(|q| cache_key(q, &spec)).collect();
    let mut slots: Vec<Option<CachedOutcome>> = Vec::with_capacity(queries.len());
    let mut hit_flags: Vec<bool> = Vec::with_capacity(queries.len());
    let mut miss_indices: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match shared.cache.get(key) {
            Some(hit) => {
                slots.push(Some(hit));
                hit_flags.push(true);
            }
            None => {
                slots.push(None);
                hit_flags.push(false);
                miss_indices.push(i);
            }
        }
    }
    let hits = (queries.len() - miss_indices.len()) as u64;
    shared.cache_hits.fetch_add(hits, Ordering::Relaxed);
    shared
        .cache_misses
        .fetch_add(miss_indices.len() as u64, Ordering::Relaxed);
    if let Some(trace) = trace.as_mut() {
        trace.record("cache_probe", probe_started.elapsed().as_nanos() as u64);
    }

    if !miss_indices.is_empty() {
        let mut job_queries = Vec::with_capacity(miss_indices.len());
        let mut job_keys = Vec::with_capacity(miss_indices.len());
        let mut queries = queries;
        // Drain back-to-front so earlier indices stay valid.
        for &i in miss_indices.iter().rev() {
            job_queries.push(Sequence::new(std::mem::take(&mut queries[i])));
            job_keys.push(keys[i].clone());
        }
        job_queries.reverse();
        job_keys.reverse();
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = QueryJob {
            spec,
            queries: job_queries,
            keys: job_keys,
            reply: reply_tx,
        };
        let admission_started = Instant::now();
        match shared.queue.try_push(job) {
            Ok(()) => {}
            Err(PushError::Full) => {
                shared.rejected_overload.fetch_add(1, Ordering::Relaxed);
                return Response::Error(WireError::Overloaded);
            }
            Err(PushError::Closed) => {
                // A drain closes the queue before connections see the flag;
                // answer the typed drain refusal in that window.
                if shared.draining.load(Ordering::SeqCst) {
                    return Response::Error(WireError::Draining);
                }
                return Response::Error(WireError::Internal("server is shutting down".into()));
            }
        }
        let fresh = match reply_rx.recv() {
            Ok(fresh) => fresh,
            Err(_) => {
                return Response::Error(WireError::Internal(
                    "worker pool stopped before the job completed".into(),
                ))
            }
        };
        if let Some(trace) = trace.as_mut() {
            // Queue wait plus worker execution, as the connection sees it.
            trace.record("admission", admission_started.elapsed().as_nanos() as u64);
        }
        debug_assert_eq!(fresh.len(), miss_indices.len());
        for (slot, outcome) in miss_indices.into_iter().zip(fresh) {
            slots[slot] = Some(outcome);
        }
    }

    let outcomes: Vec<WireOutcome> = slots
        .into_iter()
        .zip(hit_flags)
        .map(|(slot, cached)| {
            let executed = slot.expect("every slot is filled by a hit or the job reply");
            WireOutcome {
                cached,
                matches: executed.0.clone(),
                stats: executed.1,
            }
        })
        .collect();
    shared
        .queries_answered
        .fetch_add(outcomes.len() as u64, Ordering::Relaxed);
    if let Some(trace) = trace.as_ref() {
        trace.flush_to(ssr_obs::trace_ring());
    }
    Response::Outcomes(outcomes)
}

/// Executes admitted jobs on this worker's replica until the queue closes.
///
/// Each job runs inside `catch_unwind`: a panicking query (or a fired
/// `serve.worker` failpoint) drops that job's reply channel — the waiting
/// connection answers [`WireError::Internal`] — and the worker moves on to
/// the next job instead of dying, so one poisoned input cannot shrink the
/// pool. The last worker to exit during a drain completes the shutdown.
fn worker_loop<E, D>(shared: &Arc<Shared<E, D>>, worker_id: usize)
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    let db = &shared.replicas[worker_id % shared.replicas.len()];
    while let Some(job) = shared.queue.pop() {
        let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if ssr_fault::evaluate("serve.worker").is_some() {
                panic!("failpoint 'serve.worker' fired: injected worker panic");
            }
            execute_job(shared, db, job)
        }));
        if ran.is_err() {
            shared.worker_panics.fetch_add(1, Ordering::Relaxed);
        }
    }
    if shared.active_workers.fetch_sub(1, Ordering::SeqCst) == 1
        && shared.draining.load(Ordering::SeqCst)
    {
        shared.begin_shutdown();
    }
}

fn execute_job<E, D>(shared: &Arc<Shared<E, D>>, db: &SubsequenceDatabase<E, D>, job: QueryJob<E>)
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    let engine = QueryEngine::new(db)
        .with_threads(1)
        .with_slow_query_log(shared.config.slow_query_ms);
    let outcomes: Vec<CachedOutcome> = match job.spec {
        QuerySpec::Type1 { epsilon } => engine
            .batch_type1(&job.queries, epsilon)
            .outcomes
            .into_iter()
            .map(|o| Arc::new((o.result, o.stats)))
            .collect(),
        QuerySpec::Type2 { epsilon } => engine
            .batch_type2(&job.queries, epsilon)
            .outcomes
            .into_iter()
            .map(|o| Arc::new((o.result.into_iter().collect(), o.stats)))
            .collect(),
        QuerySpec::Type3 {
            epsilon_max,
            epsilon_increment,
        } => engine
            .batch_type3(&job.queries, epsilon_max, epsilon_increment)
            .outcomes
            .into_iter()
            .map(|o| Arc::new((o.result.into_iter().collect(), o.stats)))
            .collect(),
    };
    shared
        .queries_executed
        .fetch_add(outcomes.len() as u64, Ordering::Relaxed);
    for (key, outcome) in job.keys.iter().zip(&outcomes) {
        shared.cache.insert_evicting(
            key.clone(),
            Arc::clone(outcome),
            shared.config.cache_shard_capacity,
        );
    }
    let _ = job.reply.send(outcomes);
}

/// A blocking client speaking the wire protocol — the counterpart `bench
/// --serve` and the parity tests drive.
pub struct Client<E> {
    stream: TcpStream,
    max_frame_len: usize,
    _marker: PhantomData<E>,
}

impl<E: StorableElement> Client<E> {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame_len: ServeConfig::default().max_frame_len,
            _marker: PhantomData,
        })
    }

    /// Sends one request and blocks for its response. A closed connection
    /// surfaces as [`StorageError::Truncated`].
    pub fn request(&mut self, request: &Request<E>) -> Result<Response, StorageError> {
        write_frame(&mut self.stream, &request.encode_payload())?;
        self.stream.flush().map_err(StorageError::Io)?;
        match read_frame(&mut self.stream, self.max_frame_len)? {
            Some(payload) => Response::decode_payload(&payload),
            None => Err(StorageError::Truncated {
                context: "server closed the connection",
            }),
        }
    }

    /// The underlying stream, for tests that need byte-level control.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
