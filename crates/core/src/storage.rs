//! Database snapshots: save a built [`SubsequenceDatabase`] (steps 1–2 of the
//! framework, i.e. the expensive part) to disk and cold-start by loading it.
//!
//! A snapshot (format version 3) holds four sections in the `ssr-storage`
//! container format (magic + format version + section table + CRC per
//! section):
//!
//! | section      | contents                                                    |
//! |--------------|-------------------------------------------------------------|
//! | `manifest`   | element tag, distance name, [`FrameworkConfig`], counts      |
//! | `arena`      | **every** element, one contiguous run + sequence boundaries  |
//! | `dataset`    | per-sequence labels (elements live in the arena)             |
//! | `index`      | backend tag + structure over `WindowId` item handles         |
//! | `tombstones` | *optional*: removed sequence ids, strictly increasing        |
//!
//! The `tombstones` section is written only when at least one sequence has
//! been removed, so snapshots of read-only databases are byte-identical to
//! what earlier revisions of format 3 produced. A missing section means
//! every sequence is live.
//!
//! Elements are serialized exactly once: the arena section is the single
//! contiguous element store, sequences borrow ranges of it and windows are
//! `(sequence, start, len)` views derived from the arena's boundaries and
//! the configured window length — no per-window data exists on disk at all,
//! and loading performs **one** element-buffer allocation (plus per-sequence
//! label bookkeeping), never a per-window one. Earlier format versions,
//! which stored every window's elements twice (window store + index items),
//! are rejected with [`StorageError::UnsupportedVersion`].
//!
//! The `manifest` section is decodable without knowing the element type, so
//! tooling (the `ssr` CLI) can inspect any snapshot and dispatch to the right
//! generic instantiation. Loading re-attaches the runtime context — the
//! user-supplied distance, wrapped in a fresh counting metric over the shared
//! window store — and restores the index **bit-identically**, including the
//! reference-visit order that determines per-query distance-call counts; the
//! `snapshot_parity` property test holds a loaded database to "same results
//! AND same stats" as the freshly built one.

use std::path::Path;
use std::sync::Arc;

use ssr_distance::{CallCounter, SequenceDistance};
use ssr_index::{
    CountingMetric, CoverTree, LinearScan, MvReferenceIndex, ReferenceNet, WindowSliceMetric,
};
use ssr_sequence::{Element, ElementArena, Sequence, SequenceDataset, SequenceId, WindowStore};
use ssr_storage::{
    Decode, DecodeWith, Encode, Reader, Snapshot, SnapshotBuilder, StorableElement, StorageError,
    Writer,
};

use crate::config::{FrameworkConfig, IndexBackend};
use crate::database::{SubsequenceDatabase, WindowIndex, WindowMetric};

/// Section holding the element/distance tags, configuration and counts.
pub const SECTION_MANIFEST: &str = "manifest";
/// Section holding the contiguous element arena (all elements, once).
pub const SECTION_ARENA: &str = "arena";
/// Section holding per-sequence labels; sequence elements are ranges of the
/// arena section.
pub const SECTION_DATASET: &str = "dataset";
/// Section holding the metric index.
pub const SECTION_INDEX: &str = "index";
/// Optional section holding the removed (tombstoned) sequence ids. Absent
/// when every sequence is live — read-only snapshots stay byte-identical.
pub const SECTION_TOMBSTONES: &str = "tombstones";

impl Encode for IndexBackend {
    fn encode(&self, w: &mut Writer) {
        match self {
            IndexBackend::ReferenceNet => w.put_u8(0),
            IndexBackend::CoverTree => w.put_u8(1),
            IndexBackend::MvReference { references } => {
                w.put_u8(2);
                w.put_usize(*references);
            }
            IndexBackend::LinearScan => w.put_u8(3),
        }
    }
}

impl Decode for IndexBackend {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        match r.take_u8()? {
            0 => Ok(IndexBackend::ReferenceNet),
            1 => Ok(IndexBackend::CoverTree),
            2 => Ok(IndexBackend::MvReference {
                references: r.take_usize()?,
            }),
            3 => Ok(IndexBackend::LinearScan),
            other => Err(StorageError::Malformed(format!(
                "unknown index backend tag {other}"
            ))),
        }
    }
}

impl Encode for FrameworkConfig {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.lambda);
        w.put_usize(self.max_shift);
        w.put_f64(self.epsilon_prime);
        self.max_parents.encode(w);
        self.backend.encode(w);
        w.put_usize(self.max_results);
        w.put_usize(self.max_verifications);
    }
}

impl Decode for FrameworkConfig {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let config = FrameworkConfig {
            lambda: r.take_usize()?,
            max_shift: r.take_usize()?,
            epsilon_prime: r.take_f64()?,
            max_parents: Option::<usize>::decode(r)?,
            backend: IndexBackend::decode(r)?,
            max_results: r.take_usize()?,
            max_verifications: r.take_usize()?,
        };
        config
            .validate()
            .map_err(|e| StorageError::Malformed(e.to_string()))?;
        Ok(config)
    }
}

/// The element-type-agnostic header of a database snapshot. Decodable from
/// any snapshot without instantiating the framework generics, which is what
/// lets `ssr info` inspect a file and `ssr query` dispatch on its contents.
#[derive(Clone, PartialEq, Debug)]
pub struct SnapshotManifest {
    /// [`StorableElement::TAG`] of the stored element type.
    pub element: String,
    /// [`SequenceDistance::name`] of the distance the database was built with.
    pub distance: String,
    /// The framework configuration.
    pub config: FrameworkConfig,
    /// Number of stored sequences.
    pub sequences: usize,
    /// Number of indexed windows.
    pub windows: usize,
    /// Distance evaluations the original build spent constructing the index —
    /// the work a cold start skips by loading this snapshot.
    pub build_distance_calls: u64,
    /// Dynamic-program cells those build evaluations filled.
    pub build_dp_cells: u64,
}

impl Encode for SnapshotManifest {
    fn encode(&self, w: &mut Writer) {
        self.element.encode(w);
        self.distance.encode(w);
        self.config.encode(w);
        w.put_usize(self.sequences);
        w.put_usize(self.windows);
        w.put_u64(self.build_distance_calls);
        w.put_u64(self.build_dp_cells);
    }
}

impl Decode for SnapshotManifest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(SnapshotManifest {
            element: String::decode(r)?,
            distance: String::decode(r)?,
            config: FrameworkConfig::decode(r)?,
            sequences: r.take_usize()?,
            windows: r.take_usize()?,
            build_distance_calls: r.take_u64()?,
            build_dp_cells: r.take_u64()?,
        })
    }
}

impl SnapshotManifest {
    /// Reads the manifest section of a validated snapshot.
    pub fn read(snapshot: &Snapshot) -> Result<Self, StorageError> {
        snapshot.decode_section(SECTION_MANIFEST)
    }
}

impl<E, D> SubsequenceDatabase<E, D>
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    /// Serializes the database — sequences, windows and the prebuilt index —
    /// into snapshot bytes.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        self.snapshot_builder().to_bytes()
    }

    /// Writes a snapshot file (atomically, via a `.tmp` sibling).
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), StorageError> {
        self.snapshot_builder().write_to(path)
    }

    fn snapshot_builder(&self) -> SnapshotBuilder {
        let manifest = SnapshotManifest {
            element: E::TAG.to_string(),
            distance: self.distance.name().to_string(),
            config: self.config.clone(),
            sequences: self.dataset.len(),
            windows: self.windows.len(),
            build_distance_calls: self.build_distance_calls,
            build_dp_cells: self.build_dp_cells,
        };
        let mut builder = SnapshotBuilder::new();
        builder.section(SECTION_MANIFEST, |w| manifest.encode(w));
        builder.section(SECTION_ARENA, |w| self.windows.arena().encode(w));
        builder.section(SECTION_DATASET, |w| {
            // Labels only: the elements were already written — once — to the
            // arena section, and the window views are derived, not stored.
            w.put_usize(self.dataset.len());
            for (_, sequence) in self.dataset.iter() {
                sequence.label().map(str::to_string).encode(w);
            }
        });
        builder.section(SECTION_INDEX, |w| match &self.index {
            WindowIndex::ReferenceNet(idx) => {
                IndexBackend::ReferenceNet.encode(w);
                idx.encode(w);
            }
            WindowIndex::CoverTree(idx) => {
                IndexBackend::CoverTree.encode(w);
                idx.encode(w);
            }
            WindowIndex::MvReference(idx) => {
                IndexBackend::MvReference {
                    references: idx.num_references(),
                }
                .encode(w);
                idx.encode(w);
            }
            WindowIndex::LinearScan(idx) => {
                IndexBackend::LinearScan.encode(w);
                idx.encode(w);
            }
        });
        let dead = self.tombstoned_sequences();
        if !dead.is_empty() {
            builder.section(SECTION_TOMBSTONES, |w| {
                w.put_usize(dead.len());
                for id in &dead {
                    w.put_usize(id.0);
                }
            });
        }
        builder
    }

    /// Loads a database from a snapshot file, re-attaching `distance` as the
    /// runtime context. The distance must be the same measure the snapshot
    /// was built with (checked by name) and `E` the same element type
    /// (checked by tag); the loaded database is query-parity-identical to
    /// the one that was saved — same results, same per-query statistics.
    pub fn load_snapshot(path: impl AsRef<Path>, distance: D) -> Result<Self, StorageError> {
        Self::from_snapshot(&Snapshot::open(path)?, distance)
    }

    /// [`Self::load_snapshot`] over bytes already in memory.
    pub fn from_snapshot_bytes(bytes: Vec<u8>, distance: D) -> Result<Self, StorageError> {
        Self::from_snapshot(&Snapshot::from_bytes(bytes)?, distance)
    }

    /// Reassembles a database from a validated snapshot.
    pub fn from_snapshot(snapshot: &Snapshot, distance: D) -> Result<Self, StorageError> {
        let manifest = SnapshotManifest::read(snapshot)?;
        if manifest.element != E::TAG {
            return Err(StorageError::ElementMismatch {
                expected: E::TAG.to_string(),
                found: manifest.element,
            });
        }
        if manifest.distance != distance.name() {
            return Err(StorageError::DistanceMismatch {
                expected: distance.name().to_string(),
                found: manifest.distance,
            });
        }
        let config = manifest.config;
        config
            .validate_distance::<E, D>(&distance)
            .map_err(|e| StorageError::Malformed(e.to_string()))?;

        // One contiguous element decode for the whole database: the arena is
        // the only section carrying element payloads, and reconstructing the
        // window store from it is pure arithmetic over the boundaries — no
        // per-window allocation anywhere on this path.
        let arena: ElementArena<E> = snapshot.decode_section(SECTION_ARENA)?;
        let mut r = snapshot.section_reader(SECTION_DATASET)?;
        let sequence_count = r.take_len(1)?;
        if sequence_count != arena.sequence_count() {
            return Err(StorageError::Malformed(format!(
                "dataset section stores {sequence_count} labels for {} arena sequences",
                arena.sequence_count()
            )));
        }
        let mut sequences = Vec::with_capacity(sequence_count);
        for i in 0..sequence_count {
            let label = Option::<String>::decode(&mut r)?;
            let elements = arena
                .sequence_slice(SequenceId(i))
                .expect("sequence ids are dense")
                .to_vec();
            let mut sequence = Sequence::new(elements);
            if let Some(label) = label {
                sequence.set_label(label);
            }
            sequences.push(sequence);
        }
        r.expect_empty(SECTION_DATASET)?;
        let dataset = SequenceDataset::from_sequences(sequences);
        let windows = Arc::new(WindowStore::partition(Arc::new(arena), config.window_len()));
        if manifest.sequences != dataset.len() || manifest.windows != windows.len() {
            return Err(StorageError::Malformed(
                "manifest counts disagree with section contents".into(),
            ));
        }

        let distance = Arc::new(distance);
        let counter = CallCounter::new();
        let cell_counter = ssr_distance::CellCounter::new();
        let metric: WindowMetric<E, D> = CountingMetric::new(
            WindowSliceMetric::new(Arc::clone(&distance), Arc::clone(&windows)),
            counter.clone(),
        )
        .with_cell_counter(cell_counter.clone());
        let mut r = snapshot.section_reader(SECTION_INDEX)?;
        let backend = IndexBackend::decode(&mut r)?;
        if backend != config.backend {
            return Err(StorageError::Malformed(format!(
                "index section stores a {backend} index but the config says {}",
                config.backend
            )));
        }
        let index = match backend {
            IndexBackend::ReferenceNet => {
                WindowIndex::ReferenceNet(ReferenceNet::decode_with(&mut r, metric)?)
            }
            IndexBackend::CoverTree => {
                WindowIndex::CoverTree(CoverTree::decode_with(&mut r, metric)?)
            }
            IndexBackend::MvReference { .. } => {
                WindowIndex::MvReference(MvReferenceIndex::decode_with(&mut r, metric)?)
            }
            IndexBackend::LinearScan => {
                WindowIndex::LinearScan(LinearScan::decode_with(&mut r, metric)?)
            }
        };
        r.expect_empty(SECTION_INDEX)?;
        if index.len() != windows.len() {
            return Err(StorageError::Malformed(format!(
                "index stores {} items for {} windows",
                index.len(),
                windows.len()
            )));
        }
        // The framework always inserts windows in id order, so the stored
        // item handles must be the identity map onto the window table.
        // Validating that here keeps decoding total: a crafted handle can
        // never reach the metric's slice resolution (which would panic on an
        // out-of-range id).
        let items = index.stored_items();
        if items.len() != windows.len() || items.iter().enumerate().any(|(i, w)| w.0 != i) {
            return Err(StorageError::Malformed(
                "index item handles must map 1:1 onto the window table".into(),
            ));
        }

        // Tombstones: an absent section means every sequence is live. When
        // present, the ids must be strictly increasing and in range — a
        // snapshot claiming a tombstone for a sequence it does not store is
        // malformed, not silently ignored.
        let mut tombstones = vec![false; dataset.len()];
        let has_tombstones = snapshot
            .sections()
            .iter()
            .any(|s| s.name == SECTION_TOMBSTONES);
        if has_tombstones {
            let mut r = snapshot.section_reader(SECTION_TOMBSTONES)?;
            let count = r.take_len(1)?;
            let mut previous: Option<usize> = None;
            for _ in 0..count {
                let id = r.take_usize()?;
                if previous.is_some_and(|p| p >= id) {
                    return Err(StorageError::Malformed(
                        "tombstone ids must be strictly increasing".into(),
                    ));
                }
                if id >= dataset.len() {
                    return Err(StorageError::Malformed(format!(
                        "tombstone for sequence {id} but only {} sequences stored",
                        dataset.len()
                    )));
                }
                tombstones[id] = true;
                previous = Some(id);
            }
            r.expect_empty(SECTION_TOMBSTONES)?;
            if count == 0 {
                return Err(StorageError::Malformed(
                    "tombstones section present but empty".into(),
                ));
            }
        }

        // The gap prefix tables are runtime context like the counting metric:
        // rebuilt by scanning the loaded arena's sequence slices (ground
        // distances only — zero *sequence-distance* calls), not stored.
        let gap_prefixes = crate::database::build_gap_prefixes(distance.as_ref(), windows.arena());

        // No counter reset here: the counter was created fresh above, so a
        // non-zero value after loading means decoding evaluated distances —
        // exactly the regression the bench `--snapshot` zero-calls gate
        // exists to catch. Resetting would make that gate vacuous.
        let probe_depth = crate::database::probe_depth_histogram(index.backend_name());
        Ok(SubsequenceDatabase {
            config,
            distance,
            dataset: std::sync::Arc::new(dataset),
            windows,
            index,
            counter,
            cell_counter,
            build_distance_calls: manifest.build_distance_calls,
            build_dp_cells: manifest.build_dp_cells,
            gap_prefixes,
            tombstones,
            probe_depth,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_distance::{Hamming, Levenshtein};
    use ssr_sequence::{Pitch, Sequence, Symbol};

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    fn planted_db(backend: IndexBackend) -> SubsequenceDatabase<Symbol, Levenshtein> {
        let config = FrameworkConfig::new(8)
            .with_max_shift(1)
            .with_backend(backend);
        SubsequenceDatabase::builder(config, Levenshtein::new())
            .add_sequence(seq("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
            .add_sequence(seq("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"))
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_roundtrips_for_every_backend() {
        for backend in [
            IndexBackend::ReferenceNet,
            IndexBackend::CoverTree,
            IndexBackend::MvReference { references: 3 },
            IndexBackend::LinearScan,
        ] {
            let db = planted_db(backend);
            let bytes = db.snapshot_bytes();
            let loaded = SubsequenceDatabase::<Symbol, Levenshtein>::from_snapshot_bytes(
                bytes,
                Levenshtein::new(),
            )
            .unwrap();
            assert_eq!(loaded.window_count(), db.window_count());
            assert_eq!(loaded.build_distance_calls(), db.build_distance_calls());
            assert_eq!(loaded.query_distance_counter().get(), 0);

            let query = seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY");
            let a = db.query_type1(&query, 3.0);
            let b = loaded.query_type1(&query, 3.0);
            assert_eq!(a.result, b.result, "backend {backend}");
            assert_eq!(a.stats, b.stats, "backend {backend}");
        }
    }

    #[test]
    fn manifest_is_readable_without_the_element_type() {
        let db = planted_db(IndexBackend::ReferenceNet);
        let snapshot = Snapshot::from_bytes(db.snapshot_bytes()).unwrap();
        let manifest = SnapshotManifest::read(&snapshot).unwrap();
        assert_eq!(manifest.element, "symbol");
        assert_eq!(manifest.distance, "Levenshtein");
        assert_eq!(manifest.config.lambda, 8);
        assert_eq!(manifest.windows, db.window_count());
        assert_eq!(manifest.build_distance_calls, db.build_distance_calls());
        let names: Vec<&str> = snapshot
            .sections()
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["manifest", "arena", "dataset", "index"]);
    }

    #[test]
    fn mismatched_element_and_distance_are_typed_errors() {
        let db = planted_db(IndexBackend::ReferenceNet);
        let bytes = db.snapshot_bytes();

        let err = SubsequenceDatabase::<Pitch, Levenshtein>::from_snapshot_bytes(
            bytes.clone(),
            Levenshtein::new(),
        )
        .err()
        .expect("element mismatch");
        assert!(matches!(err, StorageError::ElementMismatch { .. }), "{err}");

        let err =
            SubsequenceDatabase::<Symbol, Hamming>::from_snapshot_bytes(bytes, Hamming::new())
                .err()
                .expect("distance mismatch");
        assert!(
            matches!(err, StorageError::DistanceMismatch { .. }),
            "{err}"
        );
    }

    #[test]
    fn tombstones_section_roundtrips_and_is_absent_when_clean() {
        let mut db = planted_db(IndexBackend::ReferenceNet);
        // Clean database: no tombstones section (read-only snapshots stay
        // byte-identical to what the format wrote before removal existed).
        let snapshot = Snapshot::from_bytes(db.snapshot_bytes()).unwrap();
        assert!(snapshot
            .sections()
            .iter()
            .all(|s| s.name != SECTION_TOMBSTONES));

        assert!(db.remove_sequence(SequenceId(1)));
        let snapshot = Snapshot::from_bytes(db.snapshot_bytes()).unwrap();
        assert!(snapshot
            .sections()
            .iter()
            .any(|s| s.name == SECTION_TOMBSTONES));
        let loaded = SubsequenceDatabase::<Symbol, Levenshtein>::from_snapshot(
            &snapshot,
            Levenshtein::new(),
        )
        .unwrap();
        assert!(!loaded.is_live(SequenceId(1)));
        assert_eq!(loaded.live_sequence_count(), 1);
        assert_eq!(loaded.tombstoned_sequences(), vec![SequenceId(1)]);
        // Dead-sequence matches stay filtered after a reload.
        let query = seq("WWWWWWWW");
        let a = db.query_type1(&query, 0.5);
        let b = loaded.query_type1(&query, 0.5);
        assert_eq!(a.result, b.result);
        assert!(a.result.is_empty());
    }

    #[test]
    fn out_of_range_tombstone_is_rejected() {
        let mut db = planted_db(IndexBackend::LinearScan);
        assert!(db.remove_sequence(SequenceId(0)));
        let bytes = db.snapshot_bytes();
        let snapshot = Snapshot::from_bytes(bytes).unwrap();
        // Rewrite the tombstones payload to point past the dataset.
        let mut builder = SnapshotBuilder::new();
        for section in snapshot.sections() {
            let name = section.name.clone();
            if name == SECTION_TOMBSTONES {
                builder.section(SECTION_TOMBSTONES, |w| {
                    w.put_usize(1);
                    w.put_usize(7);
                });
            } else {
                let mut r = snapshot.section_reader(&name).unwrap();
                let payload = r.take(r.remaining(), "copy").unwrap().to_vec();
                builder.section(&name, |w| w.put_raw(&payload));
            }
        }
        let err = SubsequenceDatabase::<Symbol, Levenshtein>::from_snapshot_bytes(
            builder.to_bytes(),
            Levenshtein::new(),
        )
        .err()
        .expect("out-of-range tombstone");
        assert!(matches!(err, StorageError::Malformed(_)), "{err}");
    }

    #[test]
    fn config_codec_roundtrips() {
        let config = FrameworkConfig::new(20)
            .with_max_shift(3)
            .with_backend(IndexBackend::MvReference { references: 5 })
            .with_epsilon_prime(0.5)
            .with_max_parents(4);
        let mut w = Writer::new();
        config.encode(&mut w);
        let bytes = w.into_bytes();
        let back = FrameworkConfig::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.lambda, config.lambda);
        assert_eq!(back.max_shift, config.max_shift);
        assert_eq!(back.backend, config.backend);
        assert_eq!(back.max_parents, config.max_parents);

        // An invalid stored config (max_shift >= window length) is rejected.
        let mut bad = FrameworkConfig::new(20);
        bad.max_shift = 15;
        let mut w = Writer::new();
        bad.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            FrameworkConfig::decode(&mut Reader::new(&bytes)),
            Err(StorageError::Malformed(_))
        ));
    }
}
