//! A production-posture wire client: deadlines on every socket operation,
//! retries with seeded exponential backoff, and a typed transient/fatal
//! error split.
//!
//! The minimal [`crate::serve::Client`] stays as the raw test harness — it
//! blocks forever on a stalled server and dies on the first hiccup, which is
//! exactly what byte-level protocol tests want. [`WireClient`] is the one an
//! operator's tooling uses:
//!
//! * **Deadlines everywhere.** Connect, read and write all carry timeouts
//!   ([`ClientConfig`]), so a stalled or half-dead server costs bounded
//!   wall-clock, never a hung process. An optional *per-op* deadline
//!   ([`ClientConfig::op_deadline`]) bounds the whole request across
//!   attempts: a backoff sleep that would overrun it returns
//!   [`ClientError::DeadlineExceeded`] without sleeping.
//! * **Retries for idempotent requests only.** `Ping`, `Stats`, `Metrics`
//!   and `Query` are repeatable (the server's result cache makes a repeated
//!   query bit-identical, and re-asking for counters is harmless);
//!   `Shutdown` is **never** retried — an ambiguous first attempt may have
//!   already started a drain, and a retry against the next replica would
//!   widen the blast radius.
//! * **Deterministic backoff.** Delays grow exponentially with a jitter
//!   drawn from [`ssr_fault::mix64`] seeded by [`ClientConfig::jitter_seed`]
//!   — the full retry schedule is a pure function of the seed, so tests
//!   assert it exactly and two fleets with different seeds do not
//!   thundering-herd in sync.
//! * **Typed failure.** [`ClientError::Retryable`] means the attempts
//!   budget ran out on transient trouble (connection refused/reset, timeout,
//!   [`WireError::Overloaded`], [`WireError::Draining`]); fatal protocol
//!   errors surface immediately. Decoded non-transient server errors (e.g.
//!   [`WireError::ElementMismatch`]) are returned as `Ok(Response::Error)` —
//!   the caller sees exactly what the server said.
//!
//! Each retry increments the global `ssr_client_retries_total` counter,
//! labeled by the reason, so a chaos run can check the observed retry count
//! against its fault schedule.

use std::marker::PhantomData;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use ssr_storage::{read_frame, write_frame, StorableElement, StorageError};

use crate::serve::ServeConfig;
use crate::wire::{Request, Response, WireError};

/// Deadlines and retry policy of a [`WireClient`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Budget for establishing one TCP connection.
    pub connect_timeout: Duration,
    /// Socket read deadline; a response slower than this counts as a
    /// transient failure of the attempt.
    pub read_timeout: Duration,
    /// Socket write deadline.
    pub write_timeout: Duration,
    /// Largest response frame accepted.
    pub max_frame_len: usize,
    /// Total attempts per request (first try included). `1` disables
    /// retries.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry after that.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Seed of the deterministic backoff jitter. Give each client its own
    /// seed in production (any entropy will do); fix it in tests to pin the
    /// exact retry schedule.
    pub jitter_seed: u64,
    /// Total wall-clock budget for one [`WireClient::request`] call, across
    /// every attempt *and* every backoff sleep. When the budget would be
    /// blown by the next backoff, the client returns
    /// [`ClientError::DeadlineExceeded`] immediately instead of sleeping
    /// into a deadline it already knows it will miss. `None` (the default)
    /// bounds a request only by the per-attempt socket deadlines and the
    /// attempts budget. The cluster layer sets this so a failover chain
    /// stays inside one predictable per-op deadline.
    pub op_deadline: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_frame_len: ServeConfig::default().max_frame_len,
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            jitter_seed: 0,
            op_deadline: None,
        }
    }
}

/// Why a [`WireClient`] request failed.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt hit transient trouble (refused, reset, timed out,
    /// overloaded or draining). Retrying later — or elsewhere — may work.
    Retryable {
        /// Attempts spent, [`ClientConfig::max_attempts`] at most.
        attempts: u32,
        /// The last attempt's failure, for the log line.
        last: String,
    },
    /// The per-op deadline ([`ClientConfig::op_deadline`]) ran out — or the
    /// next backoff sleep would have run it out, in which case the client
    /// returns *without sleeping*: the remaining budget is already known to
    /// be insufficient, so burning it in a sleep helps nobody. Transient by
    /// nature (the server may be fine, the budget was not), so a cluster
    /// layer treats it like [`ClientError::Retryable`] when failing over.
    DeadlineExceeded {
        /// Attempts actually spent before the budget ran out.
        attempts: u32,
        /// Wall-clock elapsed when the client gave up.
        elapsed: Duration,
    },
    /// The request cannot succeed by retrying: a protocol violation, an
    /// undecodable response, or a non-idempotent request that failed once.
    Fatal(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Retryable { attempts, last } => {
                write!(f, "request failed after {attempts} attempt(s): {last}")
            }
            ClientError::DeadlineExceeded { attempts, elapsed } => write!(
                f,
                "per-op deadline exceeded after {attempts} attempt(s) and {}ms",
                elapsed.as_millis()
            ),
            ClientError::Fatal(msg) => write!(f, "request failed fatally: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A retrying, deadline-bounded wire client. See the module docs for the
/// policy; see [`crate::serve::Client`] for the raw single-shot harness.
pub struct WireClient<E> {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    stream: Option<TcpStream>,
    /// Attempts beyond the first across this client's lifetime; mirrored to
    /// the global `ssr_client_retries_total` counter as they happen.
    retries: u64,
    _marker: PhantomData<E>,
}

impl<E: StorableElement> WireClient<E> {
    /// Resolves `addr` once and builds a client. No connection is made yet —
    /// the first [`Self::request`] connects (and a later one reconnects if
    /// the server went away in between).
    ///
    /// When `addr` resolves to **multiple** addresses (a dual-stack
    /// hostname, or an explicit `&[SocketAddr]` slice), every candidate is
    /// tried in resolution order on each connect, each with the full
    /// [`ClientConfig::connect_timeout`]; the first that accepts wins. A
    /// candidate list is therefore a poor man's failover across equivalent
    /// endpoints — `tests/client_retry.rs` pins that a dead first address
    /// does not prevent the second from answering. Distinct *replicas*
    /// deserve the real health-checked routing in `ssr-cluster` instead.
    pub fn new(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(std::io::Error::other("address resolved to nothing"));
        }
        Ok(WireClient {
            addrs,
            config,
            stream: None,
            retries: 0,
            _marker: PhantomData,
        })
    }

    /// [`Self::new`] with [`ClientConfig::default`].
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::new(addr, ClientConfig::default())
    }

    /// The backoff before attempt `attempt + 1` (so `attempt` counts the
    /// failures seen: 1 after the first). Deterministic in the config's
    /// seed: exponential growth from [`ClientConfig::base_backoff`], capped
    /// at [`ClientConfig::max_backoff`], with the upper half of each step
    /// replaced by seeded jitter. Public so tests (and capacity math) can
    /// reproduce the exact schedule.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        backoff_delay(&self.config, attempt)
    }

    /// Attempts beyond the first this client has spent so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// The addresses the client rotates over on reconnect.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Sends `request` and waits for the response, retrying transient
    /// failures (with backoff) for idempotent requests. `Shutdown` gets
    /// exactly one attempt. Server-side refusals that a retry cannot fix
    /// come back as `Ok(Response::Error(..))`, verbatim.
    pub fn request(&mut self, request: &Request<E>) -> Result<Response, ClientError> {
        // `Shutdown` is not idempotent: an ambiguous failure may already
        // have started a drain, so a retry could take down a second server.
        let budget = if matches!(request, Request::Shutdown) {
            1
        } else {
            self.config.max_attempts.max(1)
        };
        let payload = request.encode_payload();
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.attempt(&payload) {
                Ok(response) => {
                    // Overloaded/Draining are the server telling us to come
                    // back later — transient by definition. Every other
                    // decoded response (errors included) is the answer.
                    let transient = matches!(
                        response,
                        Response::Error(WireError::Overloaded)
                            | Response::Error(WireError::Draining)
                    );
                    if !transient {
                        return Ok(response);
                    }
                    if attempt >= budget {
                        return Err(ClientError::Retryable {
                            attempts: attempt,
                            last: match response {
                                Response::Error(err) => err.to_string(),
                                _ => unreachable!("transient implies an error response"),
                            },
                        });
                    }
                    self.note_retry("server_busy");
                }
                Err(AttemptError::Transient(msg)) => {
                    // The connection is in an unknown state; reconnect on
                    // the next attempt.
                    self.stream = None;
                    if attempt >= budget {
                        if budget == 1 && matches!(request, Request::Shutdown) {
                            return Err(ClientError::Fatal(format!(
                                "shutdown not retried after ambiguous failure: {msg}"
                            )));
                        }
                        return Err(ClientError::Retryable {
                            attempts: attempt,
                            last: msg,
                        });
                    }
                    self.note_retry("io");
                }
                Err(AttemptError::Fatal(msg)) => {
                    self.stream = None;
                    return Err(ClientError::Fatal(msg));
                }
            }
            // The deadline edge: when the upcoming backoff sleep cannot fit
            // inside the per-op budget, give up *now* — sleeping first would
            // spend the caller's remaining budget on a failure it could
            // already predict. The retry just noted above stays counted; the
            // attempt it would have bought never happens.
            let delay = self.backoff_delay(attempt);
            if let Some(deadline) = self.config.op_deadline {
                let elapsed = started.elapsed();
                if elapsed + delay > deadline {
                    return Err(ClientError::DeadlineExceeded {
                        attempts: attempt,
                        elapsed,
                    });
                }
            }
            std::thread::sleep(delay);
        }
    }

    /// One send/receive over the cached connection (connecting if needed).
    fn attempt(&mut self, payload: &[u8]) -> Result<Response, AttemptError> {
        if self.stream.is_none() {
            self.stream = Some(self.connect_once()?);
        }
        let stream = self.stream.as_mut().expect("connected above");
        write_frame(stream, payload).map_err(classify_storage)?;
        use std::io::Write;
        stream.flush().map_err(classify_io)?;
        match read_frame(stream, self.config.max_frame_len).map_err(classify_storage)? {
            Some(response) => {
                Response::decode_payload(&response).map_err(|err| {
                    // The frame arrived intact (CRC passed) but the payload
                    // is not a response we understand: a protocol bug, not
                    // weather. Retrying would decode the same bytes again.
                    AttemptError::Fatal(format!("undecodable response: {err}"))
                })
            }
            None => Err(AttemptError::Transient(
                "server closed the connection before responding".into(),
            )),
        }
    }

    /// Tries every resolved address with the connect deadline; first one
    /// wins.
    fn connect_once(&self) -> Result<TcpStream, AttemptError> {
        let mut last: Option<std::io::Error> = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.config.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                    let _ = stream.set_write_timeout(Some(self.config.write_timeout));
                    return Ok(stream);
                }
                Err(err) => last = Some(err),
            }
        }
        Err(AttemptError::Transient(format!(
            "connect failed: {}",
            last.expect("addrs is non-empty")
        )))
    }

    fn note_retry(&mut self, reason: &'static str) {
        self.retries += 1;
        ssr_obs::global()
            .counter_with(
                "ssr_client_retries_total",
                "Wire-client attempts beyond the first, by trigger.",
                Some(("reason", reason.to_string())),
            )
            .inc();
    }
}

/// An attempt's failure, before the retry policy weighs in.
enum AttemptError {
    /// Weather: refused, reset, timed out, stream cut mid-frame.
    Transient(String),
    /// Protocol damage a retry cannot fix.
    Fatal(String),
}

/// IO failures are weather; anything else at the frame layer means the
/// stream carried bytes that are not the protocol — fatal.
fn classify_storage(err: StorageError) -> AttemptError {
    match err {
        StorageError::Io(err) => classify_io(err),
        StorageError::Truncated { .. } => AttemptError::Transient("stream ended mid-frame".into()),
        other => AttemptError::Fatal(format!("frame damage: {other}")),
    }
}

fn classify_io(err: std::io::Error) -> AttemptError {
    AttemptError::Transient(format!("io: {err}"))
}

/// The deterministic backoff schedule: attempt `n` (1-based count of
/// failures so far) sleeps `exp/2 + jitter(seed, n) % (exp/2 + 1)` where
/// `exp = base × 2^(n-1)` capped at `max_backoff`. Full jitter over the
/// upper half: spreads a fleet while keeping at least half the exponential
/// spacing.
pub fn backoff_delay(config: &ClientConfig, attempt: u32) -> Duration {
    let base = config.base_backoff.as_millis() as u64;
    let cap = config.max_backoff.as_millis() as u64;
    let exp = base
        .saturating_mul(
            1u64.checked_shl(attempt.saturating_sub(1))
                .unwrap_or(u64::MAX),
        )
        .min(cap);
    let half = exp / 2;
    let jitter = ssr_fault::mix64(config.jitter_seed ^ u64::from(attempt)) % (half + 1);
    Duration::from_millis(half + jitter)
}
