//! # ssr-core
//!
//! The subsequence-matching framework of Zhu, Kollios and Athitsos
//! (VLDB 2012), built on the substrates in `ssr-sequence`, `ssr-distance` and
//! `ssr-index`.
//!
//! The framework runs in five steps (Section 7 of the paper):
//!
//! 1. **Dataset segmentation** — every database sequence is partitioned into
//!    fixed windows of length `l = λ/2` ([`ssr_sequence::partition_windows`]).
//! 2. **Index construction** — the windows are inserted into a metric index
//!    (by default the Reference Net; Cover Tree, MV reference-based indexing
//!    and a linear scan are available for comparison).
//! 3. **Query segmentation** — all query segments with lengths in
//!    `[λ/2 − λ0, λ/2 + λ0]` are extracted.
//! 4. **Range query** — each segment is matched against the indexed windows
//!    within radius `ε`.
//! 5. **Candidate generation and retrieval** — matched (segment, window) pairs
//!    are chained, expanded into candidate subsequence pairs and verified with
//!    the actual distance, answering one of three query types:
//!    *Type I* (all similar pairs), *Type II* (longest similar subsequence) and
//!    *Type III* (nearest pair).
//!
//! The distance plugged in must be **consistent** for the filtering to be
//! complete (Lemma 3) and **metric** for the index to be usable; the builder
//! enforces the latter and warns about the former via
//! [`FrameworkConfig::validate_distance`].

pub mod batch;
pub mod brute;
pub mod candidates;
pub mod client;
pub mod config;
pub mod database;
pub mod expand;
pub mod live;
pub mod parallel;
pub mod query;
pub mod serve;
pub mod storage;
pub mod wire;

pub use batch::{BatchOutcome, QueryEngine, VerificationMemo};
pub use brute::{all_similar_pairs, longest_similar_pair, nearest_pair, BruteConstraints};
pub use candidates::{build_candidates, Candidate, SegmentMatch};
pub use client::{backoff_delay, ClientConfig, ClientError, WireClient};
pub use config::{FrameworkConfig, FrameworkError, IndexBackend};
pub use database::{DatabaseBuilder, SegmentScan, SubsequenceDatabase};
pub use expand::{enumerate_pairs, ExpansionLimits};
pub use live::{load_with_wal, wal_path_for, LiveDatabase, WalOp};
pub use parallel::{parallel_map, resolve_threads, ShardStats, ShardedMemo};
pub use query::{QueryOutcome, QueryStats, StageTimings, SubsequenceMatch};
pub use serve::{Client, ServeConfig, Server};
pub use storage::SnapshotManifest;
pub use wire::{
    QuerySpec, Request, Response, ServerStatsSnapshot, WireError, WireOutcome, WIRE_VERSION,
    WIRE_VERSION_MIN,
};
