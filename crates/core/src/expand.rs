//! Expansion of chained candidates into concrete subsequence pairs.
//!
//! Section 7 of the paper bounds where the endpoints of a verified similar
//! subsequence pair can lie relative to a matched (segment, window) pair: the
//! query subsequence may start up to `λ/2 + λ0` before the matched segment and
//! end up to `λ/2 + λ0` after it, and the database subsequence may extend by
//! up to `λ/2` on each side of the matched windows. [`enumerate_pairs`]
//! produces the resulting `(query range, database range)` combinations in
//! decreasing order of query-subsequence length, so that a Type II search can
//! stop at the first verified pair.

use std::ops::Range;

use crate::candidates::Candidate;
use crate::config::FrameworkConfig;

/// Clamped expansion limits of a candidate within its query and database
/// sequences.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExpansionLimits {
    /// Allowed query start offsets (inclusive range of half-open range starts).
    pub query_start: Range<usize>,
    /// Allowed query end offsets.
    pub query_end: Range<usize>,
    /// Allowed database start offsets.
    pub db_start: Range<usize>,
    /// Allowed database end offsets.
    pub db_end: Range<usize>,
}

impl ExpansionLimits {
    /// Computes the expansion limits for `candidate` under `config`, given the
    /// lengths of the query and of the candidate's database sequence.
    pub fn new(
        candidate: &Candidate,
        config: &FrameworkConfig,
        query_len: usize,
        db_seq_len: usize,
    ) -> Self {
        let l = config.window_len();
        let shift = config.max_shift;
        let q = &candidate.query_range;
        let x = &candidate.db_range;
        let query_start = q.start.saturating_sub(l + shift)..q.start + 1;
        let query_end = q.end..(q.end + l + shift + 1).min(query_len + 1);
        let db_start = x.start.saturating_sub(l)..x.start + 1;
        let db_end = x.end..(x.end + l + 1).min(db_seq_len + 1);
        ExpansionLimits {
            query_start,
            query_end,
            db_start,
            db_end,
        }
    }
}

/// Enumerates candidate `(query range, database range)` pairs for
/// verification, ordered by decreasing query-subsequence length.
///
/// Only pairs satisfying the framework's constraints are produced:
/// `|SQ| ≥ λ`, `|SX| ≥ λ` and `||SQ| − |SX|| ≤ λ0`.
pub fn enumerate_pairs(
    candidate: &Candidate,
    config: &FrameworkConfig,
    query_len: usize,
    db_seq_len: usize,
) -> Vec<(Range<usize>, Range<usize>)> {
    let limits = ExpansionLimits::new(candidate, config, query_len, db_seq_len);
    let lambda = config.lambda;
    let shift = config.max_shift as i64;

    let mut pairs: Vec<(Range<usize>, Range<usize>)> = Vec::new();
    for qs in limits.query_start.clone() {
        for qe in limits.query_end.clone() {
            if qe <= qs || qe > query_len {
                continue;
            }
            let q_len = qe - qs;
            if q_len < lambda {
                continue;
            }
            for xs in limits.db_start.clone() {
                for xe in limits.db_end.clone() {
                    if xe <= xs || xe > db_seq_len {
                        continue;
                    }
                    let x_len = xe - xs;
                    if x_len < lambda {
                        continue;
                    }
                    if (q_len as i64 - x_len as i64).abs() > shift {
                        continue;
                    }
                    pairs.push((qs..qe, xs..xe));
                }
            }
        }
    }
    pairs.sort_by(|a, b| {
        let qa = a.0.end - a.0.start;
        let qb = b.0.end - b.0.start;
        qb.cmp(&qa).then_with(|| {
            let xa = a.1.end - a.1.start;
            let xb = b.1.end - b.1.start;
            xb.cmp(&xa)
        })
    });
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::SequenceId;

    fn candidate(db_range: Range<usize>, query_range: Range<usize>, chain_len: usize) -> Candidate {
        Candidate {
            sequence: SequenceId(0),
            window_range: (0, chain_len - 1),
            db_range,
            query_range,
            chain_len,
            total_distance: 0.0,
        }
    }

    fn config(lambda: usize, shift: usize) -> FrameworkConfig {
        FrameworkConfig::new(lambda).with_max_shift(shift)
    }

    #[test]
    fn limits_are_clamped_to_sequence_bounds() {
        let cfg = config(8, 1);
        let cand = candidate(0..8, 0..4, 2);
        let limits = ExpansionLimits::new(&cand, &cfg, 10, 12);
        assert_eq!(limits.query_start, 0..1);
        assert!(limits.query_end.end <= 11);
        assert_eq!(limits.db_start, 0..1);
        assert!(limits.db_end.end <= 13);
    }

    #[test]
    fn pairs_respect_length_constraints() {
        let cfg = config(8, 1);
        let cand = candidate(4..12, 3..11, 2);
        let pairs = enumerate_pairs(&cand, &cfg, 20, 30);
        assert!(!pairs.is_empty());
        for (q, x) in &pairs {
            assert!(q.end - q.start >= 8);
            assert!(x.end - x.start >= 8);
            let diff = (q.end - q.start) as i64 - (x.end - x.start) as i64;
            assert!(diff.abs() <= 1);
            assert!(q.end <= 20);
            assert!(x.end <= 30);
        }
    }

    #[test]
    fn pairs_are_sorted_by_decreasing_query_length() {
        let cfg = config(8, 2);
        let cand = candidate(4..12, 3..11, 2);
        let pairs = enumerate_pairs(&cand, &cfg, 25, 40);
        let lengths: Vec<usize> = pairs.iter().map(|(q, _)| q.end - q.start).collect();
        for w in lengths.windows(2) {
            assert!(w[0] >= w[1], "not sorted: {lengths:?}");
        }
    }

    #[test]
    fn short_sequences_yield_no_pairs_below_lambda() {
        let cfg = config(16, 1);
        let cand = candidate(0..8, 0..8, 1);
        // The query is only 10 long: no subsequence of length >= 16 exists.
        let pairs = enumerate_pairs(&cand, &cfg, 10, 100);
        assert!(pairs.is_empty());
    }

    #[test]
    fn expansion_covers_the_planted_region() {
        // A chain covering db 10..30 and query 5..25 must allow recovering a
        // pair extending a few elements on either side.
        let cfg = config(16, 2);
        let cand = candidate(10..30, 5..25, 2);
        let pairs = enumerate_pairs(&cand, &cfg, 40, 60);
        assert!(
            pairs.iter().any(|(q, x)| *q == (3..27) && *x == (8..32)),
            "expected expanded pair to be enumerated"
        );
    }
}
