//! Candidate generation: from (query segment, database window) matches to
//! chained candidate regions.
//!
//! Step 4 of the framework yields pairs coupling a query segment with a
//! database window within distance `ε`. Step 5 first *chains* such pairs:
//! if `⟨x_i, q_j⟩` and `⟨x_{i+1}, q_{j+1}⟩` are both in the result — i.e. two
//! consecutive database windows matched query segments that are themselves
//! consecutive (up to the temporal shift `λ0`) — they can be concatenated.
//! A maximal chain of `k` windows indicates a candidate similar-subsequence
//! region whose verified matches can be at most `(k + 2)·λ/2` long, and the
//! paper's Type II / III queries verify candidates longest-chain-first.

use std::collections::HashMap;
use std::ops::Range;

use ssr_sequence::{SequenceId, WindowId};

/// A single (query segment, database window) match produced by step 4.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SegmentMatch {
    /// The matched database window.
    pub window: WindowId,
    /// The sequence the window belongs to.
    pub sequence: SequenceId,
    /// Index of the window within its sequence.
    pub window_index: usize,
    /// Offset of the window within its sequence.
    pub db_start: usize,
    /// Offset of the matched query segment within the query.
    pub query_start: usize,
    /// Length of the matched query segment.
    pub query_len: usize,
    /// Distance between the segment and the window (`≤ ε`).
    pub distance: f64,
}

impl SegmentMatch {
    /// End offset (exclusive) of the query segment.
    pub fn query_end(&self) -> usize {
        self.query_start + self.query_len
    }
}

/// A chained candidate region: consecutive matched windows of one database
/// sequence together with the query span their matched segments cover.
#[derive(Clone, PartialEq, Debug)]
pub struct Candidate {
    /// The database sequence.
    pub sequence: SequenceId,
    /// Inclusive range of consecutive matched window indices.
    pub window_range: (usize, usize),
    /// Half-open element range of the database sequence covered by the
    /// chained windows.
    pub db_range: Range<usize>,
    /// Half-open element range of the query covered by the chained segments.
    pub query_range: Range<usize>,
    /// Number of windows in the chain (`k`).
    pub chain_len: usize,
    /// Sum of the segment–window distances along the chain (used to order
    /// equally long chains: tighter chains are verified first).
    pub total_distance: f64,
}

/// Builds chained candidates from segment matches.
///
/// Two matches are chainable when they are on the same sequence, their window
/// indices are consecutive, and the second query segment starts within `λ0`
/// of where the first one ends. The function returns one candidate per match
/// describing the best (longest, then tightest) chain *ending* at that match,
/// keeping only chains that are not a strict prefix of a longer chain, sorted
/// by decreasing chain length and increasing total distance.
pub fn build_candidates(
    matches: &[SegmentMatch],
    window_len: usize,
    max_shift: usize,
) -> Vec<Candidate> {
    assert!(window_len > 0, "window length must be positive");
    if matches.is_empty() {
        return Vec::new();
    }
    // Group matches per sequence and sort by (window_index, query_start).
    let mut per_sequence: HashMap<SequenceId, Vec<usize>> = HashMap::new();
    for (i, m) in matches.iter().enumerate() {
        per_sequence.entry(m.sequence).or_default().push(i);
    }

    let mut candidates = Vec::new();
    for (_, mut idxs) in per_sequence {
        idxs.sort_by_key(|&i| (matches[i].window_index, matches[i].query_start));
        // Longest-chain DP over the matches of this sequence.
        let n = idxs.len();
        let mut chain_len = vec![1usize; n];
        let mut chain_dist = vec![0.0f64; n];
        let mut chain_start = vec![0usize; n]; // position in idxs where the chain starts
        for (pos, &mi) in idxs.iter().enumerate() {
            chain_dist[pos] = matches[mi].distance;
            chain_start[pos] = pos;
            let m = &matches[mi];
            for (prev_pos, &pi) in idxs.iter().enumerate().take(pos) {
                let p = &matches[pi];
                if p.window_index + 1 != m.window_index {
                    continue;
                }
                let expected = p.query_end();
                let lo = expected.saturating_sub(max_shift);
                let hi = expected + max_shift;
                if m.query_start < lo || m.query_start > hi {
                    continue;
                }
                let cand_len = chain_len[prev_pos] + 1;
                let cand_dist = chain_dist[prev_pos] + m.distance;
                if cand_len > chain_len[pos]
                    || (cand_len == chain_len[pos] && cand_dist < chain_dist[pos])
                {
                    chain_len[pos] = cand_len;
                    chain_dist[pos] = cand_dist;
                    chain_start[pos] = chain_start[prev_pos];
                }
            }
        }
        // A match that extends into a longer chain is not reported on its own.
        let mut extended = vec![false; n];
        for pos in 0..n {
            if chain_len[pos] > 1 {
                // chain_start[pos] begins a chain that continues past itself.
                extended[chain_start[pos]] = true;
            }
        }
        for pos in 0..n {
            let mi = idxs[pos];
            let m = &matches[mi];
            if chain_len[pos] == 1 && extended[pos] {
                continue;
            }
            let start_match = &matches[idxs[chain_start[pos]]];
            candidates.push(Candidate {
                sequence: m.sequence,
                window_range: (start_match.window_index, m.window_index),
                db_range: start_match.db_start..m.db_start + window_len,
                query_range: start_match.query_start.min(m.query_start)
                    ..m.query_end().max(start_match.query_end()),
                chain_len: chain_len[pos],
                total_distance: chain_dist[pos],
            });
        }
    }
    candidates.sort_by(|a, b| {
        b.chain_len
            .cmp(&a.chain_len)
            .then(a.total_distance.partial_cmp(&b.total_distance).unwrap_or(std::cmp::Ordering::Equal))
            .then(a.sequence.0.cmp(&b.sequence.0))
            .then(a.window_range.0.cmp(&b.window_range.0))
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(
        window: usize,
        sequence: usize,
        window_index: usize,
        query_start: usize,
        query_len: usize,
        distance: f64,
    ) -> SegmentMatch {
        SegmentMatch {
            window: WindowId(window),
            sequence: SequenceId(sequence),
            window_index,
            db_start: window_index * 10,
            query_start,
            query_len,
            distance,
        }
    }

    #[test]
    fn empty_matches_give_no_candidates() {
        assert!(build_candidates(&[], 10, 2).is_empty());
    }

    #[test]
    fn single_match_becomes_single_window_candidate() {
        let matches = [m(0, 0, 3, 7, 10, 1.0)];
        let cands = build_candidates(&matches, 10, 2);
        assert_eq!(cands.len(), 1);
        let c = &cands[0];
        assert_eq!(c.chain_len, 1);
        assert_eq!(c.window_range, (3, 3));
        assert_eq!(c.db_range, 30..40);
        assert_eq!(c.query_range, 7..17);
    }

    #[test]
    fn consecutive_matches_chain() {
        // Windows 2 and 3 of sequence 0 matched query segments at 0..10 and
        // 10..20 — they chain into a length-2 candidate.
        let matches = [m(2, 0, 2, 0, 10, 1.0), m(3, 0, 3, 10, 10, 2.0)];
        let cands = build_candidates(&matches, 10, 2);
        assert_eq!(cands[0].chain_len, 2);
        assert_eq!(cands[0].window_range, (2, 3));
        assert_eq!(cands[0].db_range, 20..40);
        assert_eq!(cands[0].query_range, 0..20);
        assert!((cands[0].total_distance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shift_tolerance_respects_lambda0() {
        // Second segment starts 3 positions late; only allowed if max_shift >= 3.
        let matches = [m(0, 0, 0, 0, 10, 0.5), m(1, 0, 1, 13, 10, 0.5)];
        let strict = build_candidates(&matches, 10, 2);
        assert!(strict.iter().all(|c| c.chain_len == 1));
        let lenient = build_candidates(&matches, 10, 3);
        assert_eq!(lenient[0].chain_len, 2);
    }

    #[test]
    fn non_consecutive_windows_do_not_chain() {
        let matches = [m(0, 0, 0, 0, 10, 0.5), m(2, 0, 2, 10, 10, 0.5)];
        let cands = build_candidates(&matches, 10, 2);
        assert!(cands.iter().all(|c| c.chain_len == 1));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn chains_do_not_cross_sequences() {
        let matches = [m(0, 0, 0, 0, 10, 0.5), m(5, 1, 1, 10, 10, 0.5)];
        let cands = build_candidates(&matches, 10, 2);
        assert!(cands.iter().all(|c| c.chain_len == 1));
    }

    #[test]
    fn long_chains_come_first_and_prefixes_are_subsumed() {
        let matches = [
            m(0, 0, 0, 0, 10, 1.0),
            m(1, 0, 1, 10, 10, 1.0),
            m(2, 0, 2, 20, 10, 1.0),
            m(9, 1, 4, 0, 10, 0.1),
        ];
        let cands = build_candidates(&matches, 10, 2);
        assert_eq!(cands[0].chain_len, 3);
        assert_eq!(cands[0].sequence, SequenceId(0));
        assert_eq!(cands[0].db_range, 0..30);
        // The length-1 prefix of the chain (window 0) must not be reported,
        // but windows 1 and 2 still appear as chain ends of length 2 and 3,
        // plus the unrelated sequence-1 match.
        assert!(cands
            .iter()
            .all(|c| !(c.chain_len == 1 && c.sequence == SequenceId(0) && c.window_range == (0, 0))));
        assert!(cands
            .iter()
            .any(|c| c.sequence == SequenceId(1) && c.chain_len == 1));
    }

    #[test]
    fn ties_are_broken_by_total_distance() {
        let matches = [m(0, 0, 0, 0, 10, 5.0), m(1, 1, 0, 0, 10, 1.0)];
        let cands = build_candidates(&matches, 10, 2);
        assert_eq!(cands[0].sequence, SequenceId(1));
        assert_eq!(cands[1].sequence, SequenceId(0));
    }
}
