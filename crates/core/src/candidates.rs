//! Candidate generation: from (query segment, database window) matches to
//! chained candidate regions.
//!
//! Step 4 of the framework yields pairs coupling a query segment with a
//! database window within distance `ε`. Step 5 first *chains* such pairs:
//! if `⟨x_i, q_j⟩` and `⟨x_{i+1}, q_{j+1}⟩` are both in the result — i.e. two
//! consecutive database windows matched query segments that are themselves
//! consecutive (up to the temporal shift `λ0`) — they can be concatenated.
//! A maximal chain of `k` windows indicates a candidate similar-subsequence
//! region whose verified matches can be at most `(k + 2)·λ/2` long, and the
//! paper's Type II / III queries verify candidates longest-chain-first.

use std::collections::HashMap;
use std::ops::Range;

use ssr_sequence::{SequenceId, WindowId};

/// A single (query segment, database window) match produced by step 4.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SegmentMatch {
    /// The matched database window.
    pub window: WindowId,
    /// The sequence the window belongs to.
    pub sequence: SequenceId,
    /// Index of the window within its sequence.
    pub window_index: usize,
    /// Offset of the window within its sequence.
    pub db_start: usize,
    /// Offset of the matched query segment within the query.
    pub query_start: usize,
    /// Length of the matched query segment.
    pub query_len: usize,
    /// Distance between the segment and the window (`≤ ε`).
    pub distance: f64,
}

impl SegmentMatch {
    /// End offset (exclusive) of the query segment.
    pub fn query_end(&self) -> usize {
        self.query_start + self.query_len
    }
}

/// A chained candidate region: consecutive matched windows of one database
/// sequence together with the query span their matched segments cover.
#[derive(Clone, PartialEq, Debug)]
pub struct Candidate {
    /// The database sequence.
    pub sequence: SequenceId,
    /// Inclusive range of consecutive matched window indices.
    pub window_range: (usize, usize),
    /// Half-open element range of the database sequence covered by the
    /// chained windows.
    pub db_range: Range<usize>,
    /// Half-open element range of the query covered by the chained segments.
    pub query_range: Range<usize>,
    /// Number of windows in the chain (`k`).
    pub chain_len: usize,
    /// Sum of the segment–window distances along the chain (used to order
    /// equally long chains: tighter chains are verified first).
    pub total_distance: f64,
}

/// Builds chained candidates from segment matches.
///
/// Two matches are chainable when they are on the same sequence, their window
/// indices are consecutive, and the second query segment starts within `λ0`
/// of where the first one ends. Because segments come in lengths
/// `λ/2 − λ0 ..= λ/2 + λ0`, a purely per-step tolerance lets the query span
/// drift arbitrarily far from the database span over a long chain — such a
/// chain can never satisfy the framework's `||SX| − |SQ|| ≤ λ0` constraint, so
/// chaining additionally enforces the *cumulative* drift bound: at every chain
/// prefix, the covered query span and database span differ by at most `λ0`.
///
/// The function returns, for every match, the best (longest, then
/// least-drifted, then tightest) chain *ending* at that match, plus the
/// match's own single-window candidate
/// when the best chain is longer. The singles matter for completeness: the
/// best chain ending at a match may have been extended backwards through
/// coincidental matches in noise, shifting the candidate region so far that
/// expansion (step 5b) can no longer reach the true pair — the paper's
/// Lemma 3 guarantee is anchored on a *single* matched window, so each one is
/// kept as a candidate in its own right. Duplicates are merged and the result
/// is sorted by decreasing chain length and increasing total distance.
pub fn build_candidates(
    matches: &[SegmentMatch],
    window_len: usize,
    max_shift: usize,
) -> Vec<Candidate> {
    assert!(window_len > 0, "window length must be positive");
    if matches.is_empty() {
        return Vec::new();
    }
    // Group matches per sequence and sort by (window_index, query_start).
    let mut per_sequence: HashMap<SequenceId, Vec<usize>> = HashMap::new();
    for (i, m) in matches.iter().enumerate() {
        per_sequence.entry(m.sequence).or_default().push(i);
    }

    let mut candidates = Vec::new();
    for (_, mut idxs) in per_sequence {
        idxs.sort_by_key(|&i| (matches[i].window_index, matches[i].query_start));
        // Longest-chain DP over the matches of this sequence.
        let n = idxs.len();
        let mut chain_len = vec![1usize; n];
        let mut chain_dist = vec![0.0f64; n];
        // Position in idxs where the chain starts.
        let mut chain_start = vec![0usize; n];
        // Query span covered by the whole chain ending at each position —
        // running min/max over *all* chain members, since with a large λ0 an
        // intermediate segment can extend past both endpoints' segments.
        let mut chain_q_min = vec![0usize; n];
        let mut chain_q_max = vec![0usize; n];
        // |query span − db span| of the kept chain. Ties on length prefer the
        // smaller drift: the DP keeps one state per match, and a tightly
        // aligned chain stays extendable under the cumulative drift bound
        // where an equally long but more drifted one would not.
        let mut chain_drift = vec![0i64; n];
        for (pos, &mi) in idxs.iter().enumerate() {
            let m = &matches[mi];
            chain_dist[pos] = m.distance;
            chain_start[pos] = pos;
            chain_q_min[pos] = m.query_start;
            chain_q_max[pos] = m.query_end();
            chain_drift[pos] = (m.query_len as i64 - window_len as i64).abs();
            for (prev_pos, &pi) in idxs.iter().enumerate().take(pos) {
                let p = &matches[pi];
                if p.window_index + 1 != m.window_index {
                    continue;
                }
                let expected = p.query_end();
                let lo = expected.saturating_sub(max_shift);
                let hi = expected + max_shift;
                if m.query_start < lo || m.query_start > hi {
                    continue;
                }
                // Cumulative drift: the chain's query span may differ from its
                // database span by at most the temporal shift λ0.
                let q_min = chain_q_min[prev_pos].min(m.query_start);
                let q_max = chain_q_max[prev_pos].max(m.query_end());
                let start = &matches[idxs[chain_start[prev_pos]]];
                let query_span = (q_max - q_min) as i64;
                let db_span = (m.db_start + window_len - start.db_start) as i64;
                let drift = (query_span - db_span).abs();
                if drift > max_shift as i64 {
                    continue;
                }
                let cand_len = chain_len[prev_pos] + 1;
                let cand_dist = chain_dist[prev_pos] + m.distance;
                let better = match cand_len.cmp(&chain_len[pos]) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => {
                        drift < chain_drift[pos]
                            || (drift == chain_drift[pos] && cand_dist < chain_dist[pos])
                    }
                    std::cmp::Ordering::Less => false,
                };
                if better {
                    chain_len[pos] = cand_len;
                    chain_dist[pos] = cand_dist;
                    chain_start[pos] = chain_start[prev_pos];
                    chain_q_min[pos] = q_min;
                    chain_q_max[pos] = q_max;
                    chain_drift[pos] = drift;
                }
            }
        }
        for pos in 0..n {
            let mi = idxs[pos];
            let m = &matches[mi];
            let start_match = &matches[idxs[chain_start[pos]]];
            candidates.push(Candidate {
                sequence: m.sequence,
                window_range: (start_match.window_index, m.window_index),
                db_range: start_match.db_start..m.db_start + window_len,
                query_range: chain_q_min[pos]..chain_q_max[pos],
                chain_len: chain_len[pos],
                total_distance: chain_dist[pos],
            });
            if chain_len[pos] > 1 {
                // The match's own single-window candidate (see above).
                candidates.push(Candidate {
                    sequence: m.sequence,
                    window_range: (m.window_index, m.window_index),
                    db_range: m.db_start..m.db_start + window_len,
                    query_range: m.query_start..m.query_end(),
                    chain_len: 1,
                    total_distance: m.distance,
                });
            }
        }
    }
    // Merge duplicates (keep the tightest), then order for verification.
    candidates.sort_by(|a, b| {
        (
            a.sequence.0,
            a.window_range,
            a.query_range.start,
            a.query_range.end,
        )
            .cmp(&(
                b.sequence.0,
                b.window_range,
                b.query_range.start,
                b.query_range.end,
            ))
            .then(
                a.total_distance
                    .partial_cmp(&b.total_distance)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    candidates.dedup_by(|next, kept| {
        kept.sequence == next.sequence
            && kept.window_range == next.window_range
            && kept.query_range == next.query_range
    });
    candidates.sort_by(|a, b| {
        b.chain_len
            .cmp(&a.chain_len)
            .then(
                a.total_distance
                    .partial_cmp(&b.total_distance)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
            .then(a.sequence.0.cmp(&b.sequence.0))
            .then(a.window_range.0.cmp(&b.window_range.0))
    });
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(
        window: usize,
        sequence: usize,
        window_index: usize,
        query_start: usize,
        query_len: usize,
        distance: f64,
    ) -> SegmentMatch {
        SegmentMatch {
            window: WindowId(window),
            sequence: SequenceId(sequence),
            window_index,
            db_start: window_index * 10,
            query_start,
            query_len,
            distance,
        }
    }

    #[test]
    fn empty_matches_give_no_candidates() {
        assert!(build_candidates(&[], 10, 2).is_empty());
    }

    #[test]
    fn single_match_becomes_single_window_candidate() {
        let matches = [m(0, 0, 3, 7, 10, 1.0)];
        let cands = build_candidates(&matches, 10, 2);
        assert_eq!(cands.len(), 1);
        let c = &cands[0];
        assert_eq!(c.chain_len, 1);
        assert_eq!(c.window_range, (3, 3));
        assert_eq!(c.db_range, 30..40);
        assert_eq!(c.query_range, 7..17);
    }

    #[test]
    fn consecutive_matches_chain() {
        // Windows 2 and 3 of sequence 0 matched query segments at 0..10 and
        // 10..20 — they chain into a length-2 candidate.
        let matches = [m(2, 0, 2, 0, 10, 1.0), m(3, 0, 3, 10, 10, 2.0)];
        let cands = build_candidates(&matches, 10, 2);
        assert_eq!(cands[0].chain_len, 2);
        assert_eq!(cands[0].window_range, (2, 3));
        assert_eq!(cands[0].db_range, 20..40);
        assert_eq!(cands[0].query_range, 0..20);
        assert!((cands[0].total_distance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn shift_tolerance_respects_lambda0() {
        // Second segment starts 3 positions late; only allowed if max_shift >= 3.
        let matches = [m(0, 0, 0, 0, 10, 0.5), m(1, 0, 1, 13, 10, 0.5)];
        let strict = build_candidates(&matches, 10, 2);
        assert!(strict.iter().all(|c| c.chain_len == 1));
        let lenient = build_candidates(&matches, 10, 3);
        assert_eq!(lenient[0].chain_len, 2);
    }

    #[test]
    fn non_consecutive_windows_do_not_chain() {
        let matches = [m(0, 0, 0, 0, 10, 0.5), m(2, 0, 2, 10, 10, 0.5)];
        let cands = build_candidates(&matches, 10, 2);
        assert!(cands.iter().all(|c| c.chain_len == 1));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn chains_do_not_cross_sequences() {
        let matches = [m(0, 0, 0, 0, 10, 0.5), m(5, 1, 1, 10, 10, 0.5)];
        let cands = build_candidates(&matches, 10, 2);
        assert!(cands.iter().all(|c| c.chain_len == 1));
    }

    #[test]
    fn long_chains_come_first_and_singles_are_preserved() {
        let matches = [
            m(0, 0, 0, 0, 10, 1.0),
            m(1, 0, 1, 10, 10, 1.0),
            m(2, 0, 2, 20, 10, 1.0),
            m(9, 1, 4, 0, 10, 0.1),
        ];
        let cands = build_candidates(&matches, 10, 2);
        assert_eq!(cands[0].chain_len, 3);
        assert_eq!(cands[0].sequence, SequenceId(0));
        assert_eq!(cands[0].db_range, 0..30);
        // Every chained match also yields its own single-window candidate
        // (completeness anchor of Lemma 3), alongside the chain ends of
        // length 2 and 3 and the unrelated sequence-1 match.
        for window in 0..3 {
            assert!(
                cands.iter().any(|c| c.chain_len == 1
                    && c.sequence == SequenceId(0)
                    && c.window_range == (window, window)),
                "missing single-window candidate for window {window}"
            );
        }
        assert!(cands
            .iter()
            .any(|c| c.sequence == SequenceId(1) && c.chain_len == 1));
    }

    #[test]
    fn ties_are_broken_by_total_distance() {
        let matches = [m(0, 0, 0, 0, 10, 5.0), m(1, 1, 0, 0, 10, 1.0)];
        let cands = build_candidates(&matches, 10, 2);
        assert_eq!(cands[0].sequence, SequenceId(1));
        assert_eq!(cands[1].sequence, SequenceId(0));
    }
}
