//! The query server's wire protocol: a length-prefixed binary codec over the
//! shared [`ssr_storage::frame`] framing.
//!
//! Every message on the socket is one frame — `[u32 len][u32 crc][payload]`
//! — so the transport inherits the WAL's audited truncation/corruption
//! story: a flipped byte anywhere in a frame fails its CRC, a lying length
//! prefix is refused before the payload is read, and nothing in the decode
//! path can panic on hostile bytes. Inside the frame, payloads reuse the
//! snapshot codec ([`ssr_storage::Writer`] / [`ssr_storage::Reader`]), whose
//! `take_*` accessors are bounds-checked and whose length prefixes are
//! sanity-capped against the remaining buffer.
//!
//! Payload layout: `[version u8][kind u8][body]`, with exact-consumption
//! demanded after the body (`expect_empty`). A `Query` body leads with the
//! element tag so a server can refuse a mismatched element type *before*
//! attempting to decode elements of the wrong shape.
//!
//! **Version negotiation.** The current version is 3; the server also
//! accepts version-1 and version-2 requests and *echoes the request's
//! version* in its response, encoding the response body in that version's
//! layout. Version 2 added the `Metrics` request/response pair and appended
//! `uptime_ms` and `cache_bytes_estimate` to the `Stats` body — a version-1
//! `Stats` body omits them (the decoder defaults them to zero), so old
//! clients keep decoding every reply bit-for-bit as before. Version 3 added
//! the [`WireError::Draining`] refusal a draining server answers new queries
//! with; when replying to a pre-3 peer the server downgrades it to
//! [`WireError::Internal`] (same retry-later meaning, a tag the old decoder
//! knows), so old clients never see an unknown error tag.
//!
//! The module is pure codec — no sockets. [`crate::serve`] owns the IO.

use ssr_storage::{Decode, Encode, Reader, StorableElement, StorageError, Writer};

use crate::query::{QueryStats, SubsequenceMatch};

/// Current wire protocol version; what [`Request::encode_payload`] writes.
pub const WIRE_VERSION: u8 = 3;

/// Oldest wire version still decoded. Version-1 peers get version-1-shaped
/// replies (see the module docs on negotiation).
pub const WIRE_VERSION_MIN: u8 = 1;

const REQ_PING: u8 = 0;
const REQ_STATS: u8 = 1;
const REQ_SHUTDOWN: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_METRICS: u8 = 4;

const RESP_PONG: u8 = 0;
const RESP_STATS: u8 = 1;
const RESP_SHUTTING_DOWN: u8 = 2;
const RESP_OUTCOMES: u8 = 3;
const RESP_ERROR: u8 = 4;
const RESP_METRICS: u8 = 5;

const SPEC_TYPE1: u8 = 0;
const SPEC_TYPE2: u8 = 1;
const SPEC_TYPE3: u8 = 2;

const ERR_OVERLOADED: u8 = 0;
const ERR_UNSUPPORTED_VERSION: u8 = 1;
const ERR_MALFORMED: u8 = 2;
const ERR_ELEMENT_MISMATCH: u8 = 3;
const ERR_INTERNAL: u8 = 4;
const ERR_DRAINING: u8 = 5;

/// Which of the paper's three query types a request asks for, with its
/// radii. One spec applies to every query sequence in the request — the
/// server fans the batch out as a single [`crate::QueryEngine`] call.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum QuerySpec {
    /// Type I: all similar pairs within `epsilon`.
    Type1 {
        /// Range-query radius ε.
        epsilon: f64,
    },
    /// Type II: the longest similar subsequence within `epsilon`.
    Type2 {
        /// Range-query radius ε.
        epsilon: f64,
    },
    /// Type III: the nearest pair found by an ε-sweep.
    Type3 {
        /// Upper bound of the ε-sweep.
        epsilon_max: f64,
        /// Sweep step.
        epsilon_increment: f64,
    },
}

impl QuerySpec {
    /// Stable one-byte tag, part of the result-cache key.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            QuerySpec::Type1 { .. } => SPEC_TYPE1,
            QuerySpec::Type2 { .. } => SPEC_TYPE2,
            QuerySpec::Type3 { .. } => SPEC_TYPE3,
        }
    }

    /// The spec's radii as raw bits, part of the result-cache key (bit
    /// equality, so `-0.0` and `0.0` key differently — exactness over
    /// cleverness in a cache key).
    pub(crate) fn radius_bits(&self) -> (u64, u64) {
        match self {
            QuerySpec::Type1 { epsilon } | QuerySpec::Type2 { epsilon } => (epsilon.to_bits(), 0),
            QuerySpec::Type3 {
                epsilon_max,
                epsilon_increment,
            } => (epsilon_max.to_bits(), epsilon_increment.to_bits()),
        }
    }
}

impl Encode for QuerySpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            QuerySpec::Type1 { epsilon } => {
                w.put_u8(SPEC_TYPE1);
                w.put_f64(*epsilon);
            }
            QuerySpec::Type2 { epsilon } => {
                w.put_u8(SPEC_TYPE2);
                w.put_f64(*epsilon);
            }
            QuerySpec::Type3 {
                epsilon_max,
                epsilon_increment,
            } => {
                w.put_u8(SPEC_TYPE3);
                w.put_f64(*epsilon_max);
                w.put_f64(*epsilon_increment);
            }
        }
    }
}

impl Decode for QuerySpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        match r.take_u8()? {
            SPEC_TYPE1 => Ok(QuerySpec::Type1 {
                epsilon: r.take_f64()?,
            }),
            SPEC_TYPE2 => Ok(QuerySpec::Type2 {
                epsilon: r.take_f64()?,
            }),
            SPEC_TYPE3 => Ok(QuerySpec::Type3 {
                epsilon_max: r.take_f64()?,
                epsilon_increment: r.take_f64()?,
            }),
            tag => Err(StorageError::Malformed(format!(
                "unknown query spec tag {tag}"
            ))),
        }
    }
}

/// A client-to-server message.
#[derive(Clone, PartialEq, Debug)]
pub enum Request<E> {
    /// Liveness probe; answered with [`Response::Pong`] without queueing.
    Ping,
    /// Server counters; answered with [`Response::Stats`] without queueing.
    Stats,
    /// Ask the server to stop accepting connections and drain.
    Shutdown,
    /// A batch of query sequences, all executed under one [`QuerySpec`].
    Query {
        /// The query spec applied to every sequence in the batch.
        spec: QuerySpec,
        /// The query sequences' elements, one `Vec` per query.
        queries: Vec<Vec<E>>,
    },
    /// The server's telemetry in Prometheus text exposition; answered with
    /// [`Response::Metrics`] without queueing. Added in wire version 2.
    Metrics,
}

impl<E: StorableElement> Request<E> {
    /// Encodes the request into a raw (unframed) payload.
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(WIRE_VERSION);
        match self {
            Request::Ping => w.put_u8(REQ_PING),
            Request::Stats => w.put_u8(REQ_STATS),
            Request::Shutdown => w.put_u8(REQ_SHUTDOWN),
            Request::Query { spec, queries } => {
                w.put_u8(REQ_QUERY);
                w.put_str(E::TAG);
                spec.encode(&mut w);
                queries.encode(&mut w);
            }
            Request::Metrics => w.put_u8(REQ_METRICS),
        }
        w.into_bytes()
    }

    /// Decodes a request payload, demanding exact consumption. A version or
    /// element mismatch surfaces as a typed error before any element is
    /// decoded.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, StorageError> {
        Self::decode_payload_versioned(payload).map(|(_, request)| request)
    }

    /// [`Self::decode_payload`] plus the request's wire version, which the
    /// server echoes when encoding its response.
    pub fn decode_payload_versioned(payload: &[u8]) -> Result<(u8, Self), StorageError> {
        let mut r = Reader::new(payload);
        let version = r.take_u8()?;
        if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
            return Err(StorageError::UnsupportedVersion(u32::from(version)));
        }
        let request = match r.take_u8()? {
            REQ_PING => Request::Ping,
            REQ_STATS => Request::Stats,
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_QUERY => {
                let tag = r.take_str()?;
                if tag != E::TAG {
                    return Err(StorageError::ElementMismatch {
                        expected: E::TAG.to_string(),
                        found: tag,
                    });
                }
                let spec = QuerySpec::decode(&mut r)?;
                let queries = Vec::<Vec<E>>::decode(&mut r)?;
                Request::Query { spec, queries }
            }
            REQ_METRICS => Request::Metrics,
            kind => {
                return Err(StorageError::Malformed(format!(
                    "unknown request kind {kind}"
                )))
            }
        };
        r.expect_empty("wire request")?;
        Ok((version, request))
    }
}

/// One query's served outcome: the verified matches (Type II/III report
/// zero or one), the query's work accounting, and whether the server's
/// result cache answered it without executing.
#[derive(Clone, PartialEq, Debug)]
pub struct WireOutcome {
    /// Whether the server's result cache supplied this outcome.
    pub cached: bool,
    /// Verified matches; empty or a single entry for Type II/III.
    pub matches: Vec<SubsequenceMatch>,
    /// The work the query performed when it was (first) executed.
    pub stats: QueryStats,
}

fn encode_match(m: &SubsequenceMatch, w: &mut Writer) {
    w.put_usize(m.sequence.0);
    w.put_usize(m.db_range.start);
    w.put_usize(m.db_range.end);
    w.put_usize(m.query_range.start);
    w.put_usize(m.query_range.end);
    w.put_f64(m.distance);
}

fn decode_match(r: &mut Reader<'_>) -> Result<SubsequenceMatch, StorageError> {
    Ok(SubsequenceMatch {
        sequence: ssr_sequence::SequenceId(r.take_usize()?),
        db_range: r.take_usize()?..r.take_usize()?,
        query_range: r.take_usize()?..r.take_usize()?,
        distance: r.take_f64()?,
    })
}

fn encode_stats(s: &QueryStats, w: &mut Writer) {
    w.put_usize(s.segments);
    w.put_u64(s.index_distance_calls);
    w.put_usize(s.segment_matches);
    w.put_usize(s.unique_windows);
    w.put_usize(s.consecutive_windows);
    w.put_usize(s.candidates);
    w.put_u64(s.verification_calls);
    w.put_u64(s.dp_cells_evaluated);
    w.put_u64(s.pruned_by_lower_bound);
    w.put_bool(s.budget_exhausted);
}

fn decode_stats(r: &mut Reader<'_>) -> Result<QueryStats, StorageError> {
    Ok(QueryStats {
        segments: r.take_usize()?,
        index_distance_calls: r.take_u64()?,
        segment_matches: r.take_usize()?,
        unique_windows: r.take_usize()?,
        consecutive_windows: r.take_usize()?,
        candidates: r.take_usize()?,
        verification_calls: r.take_u64()?,
        dp_cells_evaluated: r.take_u64()?,
        pruned_by_lower_bound: r.take_u64()?,
        budget_exhausted: r.take_bool()?,
    })
}

impl Encode for WireOutcome {
    fn encode(&self, w: &mut Writer) {
        w.put_bool(self.cached);
        w.put_usize(self.matches.len());
        for m in &self.matches {
            encode_match(m, w);
        }
        encode_stats(&self.stats, w);
    }
}

impl Decode for WireOutcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let cached = r.take_bool()?;
        // 6 machine words + f64 per match under the 4-byte-usize floor the
        // codec assumes; 8 is a safe minimum to cap a lying count.
        let count = r.take_len(8)?;
        let mut matches = Vec::with_capacity(count);
        for _ in 0..count {
            matches.push(decode_match(r)?);
        }
        let stats = decode_stats(r)?;
        Ok(WireOutcome {
            cached,
            matches,
            stats,
        })
    }
}

/// A snapshot of the server's counters, answered to [`Request::Stats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerStatsSnapshot {
    /// Stored sequences (tombstoned ones included).
    pub sequences: usize,
    /// Indexed windows.
    pub windows: usize,
    /// Resident bytes of the shared element arena.
    pub arena_bytes: usize,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Read-only database replicas the workers rotate over.
    pub replicas: usize,
    /// Queries executed (cache misses that ran the engine).
    pub queries_executed: u64,
    /// Queries answered straight from the result cache.
    pub cache_hits: u64,
    /// Result-cache misses (equals `queries_executed` plus failed batches).
    pub cache_misses: u64,
    /// Entries currently resident in the result cache.
    pub cache_entries: usize,
    /// Query batches rejected with [`WireError::Overloaded`].
    pub rejected_overload: u64,
    /// Milliseconds since the server started. Wire version ≥ 2; decodes as
    /// zero from a version-1 body.
    pub uptime_ms: u64,
    /// Estimated resident bytes of the result cache (keys plus cached
    /// outcomes). Wire version ≥ 2; decodes as zero from a version-1 body.
    pub cache_bytes_estimate: u64,
}

/// Encodes a stats body in the layout of `version`: the ten version-1
/// fields, then — for version ≥ 2 — the uptime and cache-bytes fields. The
/// split is what keeps old clients decoding (they are answered in their own
/// version, which simply omits the appended fields, so their
/// exact-consumption check still passes).
fn encode_stats_snapshot(s: &ServerStatsSnapshot, w: &mut Writer, version: u8) {
    w.put_usize(s.sequences);
    w.put_usize(s.windows);
    w.put_usize(s.arena_bytes);
    w.put_usize(s.workers);
    w.put_usize(s.replicas);
    w.put_u64(s.queries_executed);
    w.put_u64(s.cache_hits);
    w.put_u64(s.cache_misses);
    w.put_usize(s.cache_entries);
    w.put_u64(s.rejected_overload);
    if version >= 2 {
        w.put_u64(s.uptime_ms);
        w.put_u64(s.cache_bytes_estimate);
    }
}

fn decode_stats_snapshot(
    r: &mut Reader<'_>,
    version: u8,
) -> Result<ServerStatsSnapshot, StorageError> {
    let mut snapshot = ServerStatsSnapshot {
        sequences: r.take_usize()?,
        windows: r.take_usize()?,
        arena_bytes: r.take_usize()?,
        workers: r.take_usize()?,
        replicas: r.take_usize()?,
        queries_executed: r.take_u64()?,
        cache_hits: r.take_u64()?,
        cache_misses: r.take_u64()?,
        cache_entries: r.take_usize()?,
        rejected_overload: r.take_u64()?,
        uptime_ms: 0,
        cache_bytes_estimate: 0,
    };
    if version >= 2 {
        snapshot.uptime_ms = r.take_u64()?;
        snapshot.cache_bytes_estimate = r.take_u64()?;
    }
    Ok(snapshot)
}

/// A typed refusal. The connection stays usable after any of these — the
/// server answers with the error and keeps reading frames (framing-level
/// damage additionally closes the connection, since the stream offset can no
/// longer be trusted).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The admission queue was full; retry later.
    Overloaded,
    /// The client spoke a different [`WIRE_VERSION`].
    UnsupportedVersion(u8),
    /// The frame decoded but its payload did not.
    Malformed(String),
    /// The request's element tag does not match the served database.
    ElementMismatch {
        /// The element tag the server was built with.
        expected: String,
        /// The element tag the request carried.
        found: String,
    },
    /// The server failed internally (e.g. a worker disappeared mid-drain).
    Internal(String),
    /// The server is draining: it finishes in-flight work but refuses new
    /// query batches. Retry against another replica or after the restart.
    /// Added in wire version 3; pre-3 peers receive [`WireError::Internal`]
    /// instead (see the module docs on negotiation).
    Draining,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Overloaded => write!(f, "server overloaded: admission queue full"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (expected {WIRE_VERSION_MIN}..={WIRE_VERSION})"
                )
            }
            WireError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            WireError::ElementMismatch { expected, found } => {
                write!(f, "element mismatch: server holds {expected}, got {found}")
            }
            WireError::Internal(msg) => write!(f, "internal server error: {msg}"),
            WireError::Draining => write!(f, "server is draining: not accepting new queries"),
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Maps a decode failure onto the wire-visible error taxonomy.
    pub fn from_storage(err: &StorageError) -> WireError {
        match err {
            StorageError::UnsupportedVersion(v) => {
                WireError::UnsupportedVersion(u8::try_from(*v).unwrap_or(u8::MAX))
            }
            StorageError::ElementMismatch { expected, found } => WireError::ElementMismatch {
                expected: expected.clone(),
                found: found.clone(),
            },
            other => WireError::Malformed(other.to_string()),
        }
    }
}

impl Encode for WireError {
    fn encode(&self, w: &mut Writer) {
        match self {
            WireError::Overloaded => w.put_u8(ERR_OVERLOADED),
            WireError::UnsupportedVersion(v) => {
                w.put_u8(ERR_UNSUPPORTED_VERSION);
                w.put_u8(*v);
            }
            WireError::Malformed(msg) => {
                w.put_u8(ERR_MALFORMED);
                w.put_str(msg);
            }
            WireError::ElementMismatch { expected, found } => {
                w.put_u8(ERR_ELEMENT_MISMATCH);
                w.put_str(expected);
                w.put_str(found);
            }
            WireError::Internal(msg) => {
                w.put_u8(ERR_INTERNAL);
                w.put_str(msg);
            }
            WireError::Draining => w.put_u8(ERR_DRAINING),
        }
    }
}

impl Decode for WireError {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        match r.take_u8()? {
            ERR_OVERLOADED => Ok(WireError::Overloaded),
            ERR_UNSUPPORTED_VERSION => Ok(WireError::UnsupportedVersion(r.take_u8()?)),
            ERR_MALFORMED => Ok(WireError::Malformed(r.take_str()?)),
            ERR_ELEMENT_MISMATCH => Ok(WireError::ElementMismatch {
                expected: r.take_str()?,
                found: r.take_str()?,
            }),
            ERR_INTERNAL => Ok(WireError::Internal(r.take_str()?)),
            ERR_DRAINING => Ok(WireError::Draining),
            tag => Err(StorageError::Malformed(format!(
                "unknown wire error tag {tag}"
            ))),
        }
    }
}

/// A server-to-client message.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Liveness answer to [`Request::Ping`].
    Pong,
    /// Counter snapshot answering [`Request::Stats`].
    Stats(ServerStatsSnapshot),
    /// Acknowledgement of [`Request::Shutdown`]; the server drains and stops.
    ShuttingDown,
    /// One outcome per query sequence of a [`Request::Query`], in order.
    Outcomes(Vec<WireOutcome>),
    /// The request was refused; see [`WireError`].
    Error(WireError),
    /// The server's telemetry as Prometheus text exposition, answering
    /// [`Request::Metrics`]. Added in wire version 2.
    Metrics(String),
}

impl Response {
    /// Encodes the response into a raw (unframed) payload at the current
    /// [`WIRE_VERSION`].
    pub fn encode_payload(&self) -> Vec<u8> {
        self.encode_payload_versioned(WIRE_VERSION)
    }

    /// Encodes the response in the layout of `version` — the server echoes
    /// the version the request arrived in, so version-1 clients receive
    /// version-1-shaped bodies.
    pub fn encode_payload_versioned(&self, version: u8) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(version);
        match self {
            Response::Pong => w.put_u8(RESP_PONG),
            Response::Stats(stats) => {
                w.put_u8(RESP_STATS);
                encode_stats_snapshot(stats, &mut w, version);
            }
            Response::ShuttingDown => w.put_u8(RESP_SHUTTING_DOWN),
            Response::Outcomes(outcomes) => {
                w.put_u8(RESP_OUTCOMES);
                outcomes.encode(&mut w);
            }
            Response::Error(err) => {
                w.put_u8(RESP_ERROR);
                // `Draining` is a version-3 tag; a pre-3 peer gets the
                // closest error its decoder knows (same retry-later intent).
                if version < 3 && *err == WireError::Draining {
                    WireError::Internal("server is draining".to_string()).encode(&mut w);
                } else {
                    err.encode(&mut w);
                }
            }
            Response::Metrics(text) => {
                w.put_u8(RESP_METRICS);
                w.put_str(text);
            }
        }
        w.into_bytes()
    }

    /// Decodes a response payload, demanding exact consumption. Accepts any
    /// version in `WIRE_VERSION_MIN..=WIRE_VERSION`, defaulting fields a
    /// version-1 body omits.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, StorageError> {
        let mut r = Reader::new(payload);
        let version = r.take_u8()?;
        if !(WIRE_VERSION_MIN..=WIRE_VERSION).contains(&version) {
            return Err(StorageError::UnsupportedVersion(u32::from(version)));
        }
        let response = match r.take_u8()? {
            RESP_PONG => Response::Pong,
            RESP_STATS => Response::Stats(decode_stats_snapshot(&mut r, version)?),
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_OUTCOMES => Response::Outcomes(Vec::<WireOutcome>::decode(&mut r)?),
            RESP_ERROR => Response::Error(WireError::decode(&mut r)?),
            RESP_METRICS => Response::Metrics(r.take_str()?),
            kind => {
                return Err(StorageError::Malformed(format!(
                    "unknown response kind {kind}"
                )))
            }
        };
        r.expect_empty("wire response")?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::{SequenceId, Symbol};

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    fn sample_outcome() -> WireOutcome {
        WireOutcome {
            cached: true,
            matches: vec![SubsequenceMatch {
                sequence: SequenceId(3),
                db_range: 10..25,
                query_range: 2..18,
                distance: 2.5,
            }],
            stats: QueryStats {
                segments: 4,
                index_distance_calls: 123,
                segment_matches: 7,
                unique_windows: 6,
                consecutive_windows: 3,
                candidates: 2,
                verification_calls: 2,
                dp_cells_evaluated: 4567,
                pruned_by_lower_bound: 1,
                budget_exhausted: false,
            },
        }
    }

    #[test]
    fn request_roundtrip() {
        let requests: Vec<Request<Symbol>> = vec![
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Query {
                spec: QuerySpec::Type3 {
                    epsilon_max: 4.0,
                    epsilon_increment: 1.0,
                },
                queries: vec![sym("ACDEFG"), sym("")],
            },
            Request::Metrics,
        ];
        for request in requests {
            let payload = request.encode_payload();
            let (version, decoded) = Request::<Symbol>::decode_payload_versioned(&payload).unwrap();
            assert_eq!(version, WIRE_VERSION);
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn response_roundtrip() {
        let responses = vec![
            Response::Pong,
            Response::Stats(ServerStatsSnapshot {
                sequences: 10,
                windows: 400,
                arena_bytes: 8649,
                workers: 4,
                replicas: 2,
                queries_executed: 17,
                cache_hits: 5,
                cache_misses: 17,
                cache_entries: 12,
                rejected_overload: 1,
                uptime_ms: 90_000,
                cache_bytes_estimate: 4096,
            }),
            Response::ShuttingDown,
            Response::Outcomes(vec![sample_outcome()]),
            Response::Metrics("# TYPE ssr_requests_total counter\nssr_requests_total 3\n".into()),
            Response::Error(WireError::Overloaded),
            Response::Error(WireError::ElementMismatch {
                expected: "symbol".into(),
                found: "pitch".into(),
            }),
            Response::Error(WireError::Malformed("bad".into())),
            Response::Error(WireError::UnsupportedVersion(9)),
            Response::Error(WireError::Internal("worker gone".into())),
            Response::Error(WireError::Draining),
        ];
        for response in responses {
            let payload = response.encode_payload();
            let decoded = Response::decode_payload(&payload).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn version_and_kind_are_checked() {
        let mut payload = Request::<Symbol>::Ping.encode_payload();
        payload[0] = WIRE_VERSION + 1;
        assert!(matches!(
            Request::<Symbol>::decode_payload(&payload),
            Err(StorageError::UnsupportedVersion(_))
        ));

        let mut payload = Request::<Symbol>::Ping.encode_payload();
        payload[0] = 0;
        assert!(matches!(
            Request::<Symbol>::decode_payload(&payload),
            Err(StorageError::UnsupportedVersion(_))
        ));

        let mut payload = Request::<Symbol>::Ping.encode_payload();
        payload[1] = 200;
        assert!(matches!(
            Request::<Symbol>::decode_payload(&payload),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn version_1_peers_still_roundtrip() {
        // A version-1 request (byte-patched: the body layout is identical)
        // decodes and reports its version, which the server echoes.
        let mut payload = Request::<Symbol>::Ping.encode_payload();
        payload[0] = 1;
        let (version, decoded) = Request::<Symbol>::decode_payload_versioned(&payload).unwrap();
        assert_eq!(version, 1);
        assert_eq!(decoded, Request::Ping);

        // A stats body encoded for a version-1 client omits the appended
        // fields; the version-2 decoder fills them with zero.
        let stats = ServerStatsSnapshot {
            sequences: 2,
            windows: 40,
            arena_bytes: 512,
            workers: 1,
            replicas: 1,
            queries_executed: 9,
            cache_hits: 1,
            cache_misses: 9,
            cache_entries: 3,
            rejected_overload: 0,
            uptime_ms: 55_000,
            cache_bytes_estimate: 777,
        };
        let v1 = Response::Stats(stats).encode_payload_versioned(1);
        let v2 = Response::Stats(stats).encode_payload_versioned(WIRE_VERSION);
        assert_eq!(v1.len() + 16, v2.len(), "v2 appends two u64s");
        match Response::decode_payload(&v1).unwrap() {
            Response::Stats(decoded) => {
                assert_eq!(decoded.uptime_ms, 0);
                assert_eq!(decoded.cache_bytes_estimate, 0);
                assert_eq!(decoded.queries_executed, stats.queries_executed);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        match Response::decode_payload(&v2).unwrap() {
            Response::Stats(decoded) => assert_eq!(decoded, stats),
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn draining_downgrades_for_pre_v3_peers() {
        // A version-3 peer sees the typed refusal verbatim.
        let v3 = Response::Error(WireError::Draining).encode_payload_versioned(3);
        assert_eq!(
            Response::decode_payload(&v3).unwrap(),
            Response::Error(WireError::Draining)
        );
        // Version-1 and version-2 peers get an `Internal` their decoders
        // already know, carrying the same retry-later meaning.
        for version in [1, 2] {
            let old = Response::Error(WireError::Draining).encode_payload_versioned(version);
            match Response::decode_payload(&old).unwrap() {
                Response::Error(WireError::Internal(msg)) => {
                    assert!(msg.contains("draining"), "message should say why: {msg}")
                }
                other => panic!("expected downgraded internal error, got {other:?}"),
            }
        }
    }

    #[test]
    fn element_tag_is_checked_before_elements() {
        let request: Request<ssr_sequence::Pitch> = Request::Query {
            spec: QuerySpec::Type1 { epsilon: 1.0 },
            queries: vec![vec![]],
        };
        let payload = request.encode_payload();
        assert!(matches!(
            Request::<Symbol>::decode_payload(&payload),
            Err(StorageError::ElementMismatch { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_refused() {
        let mut payload = Request::<Symbol>::Ping.encode_payload();
        payload.push(0);
        assert!(matches!(
            Request::<Symbol>::decode_payload(&payload),
            Err(StorageError::TrailingBytes { .. })
        ));
    }
}
