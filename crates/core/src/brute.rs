//! Brute-force reference implementations.
//!
//! These evaluate all `O(|Q|²·|X|²)` subsequence pairs and are therefore only
//! usable on small inputs; they exist as ground truth for tests (and for users
//! who want to sanity-check the framework on their own data), mirroring the
//! "brute force search" the paper's complexity analysis compares against.

use std::ops::Range;

use ssr_distance::SequenceDistance;
use ssr_sequence::{Element, Sequence, SequenceDataset, SequenceId};

use crate::query::{pair_slices, SubsequenceMatch};

/// Constraints shared by all brute-force searches: minimum length `λ` and
/// maximum length difference `λ0`.
#[derive(Clone, Copy, Debug)]
pub struct BruteConstraints {
    /// Minimum subsequence length `λ`.
    pub lambda: usize,
    /// Maximum length difference `λ0`.
    pub max_shift: usize,
}

fn pairs<'a, E: Element>(
    query: &'a Sequence<E>,
    db_seq: &'a Sequence<E>,
    constraints: BruteConstraints,
) -> impl Iterator<Item = (Range<usize>, Range<usize>)> + 'a {
    let lambda = constraints.lambda;
    let shift = constraints.max_shift as i64;
    let q_len = query.len();
    let x_len = db_seq.len();
    (0..q_len).flat_map(move |qs| {
        ((qs + lambda)..=q_len).flat_map(move |qe| {
            (0..x_len).flat_map(move |xs| {
                ((xs + lambda)..=x_len).filter_map(move |xe| {
                    let diff = (qe - qs) as i64 - (xe - xs) as i64;
                    (diff.abs() <= shift).then_some((qs..qe, xs..xe))
                })
            })
        })
    })
}

/// All similar subsequence pairs between `query` and every sequence of
/// `dataset` (Type I ground truth).
pub fn all_similar_pairs<E: Element, D: SequenceDistance<E>>(
    query: &Sequence<E>,
    dataset: &SequenceDataset<E>,
    distance: &D,
    constraints: BruteConstraints,
    epsilon: f64,
) -> Vec<SubsequenceMatch> {
    let mut results = Vec::new();
    for (id, db_seq) in dataset.iter() {
        for (q_range, x_range) in pairs(query, db_seq, constraints) {
            let (sq, sx) = pair_slices(query, db_seq, &q_range, &x_range);
            let d = distance.distance(sq, sx);
            if d <= epsilon {
                results.push(SubsequenceMatch {
                    sequence: id,
                    db_range: x_range,
                    query_range: q_range,
                    distance: d,
                });
            }
        }
    }
    results
}

/// The longest similar query subsequence (Type II ground truth): maximises
/// `|SQ|`, breaking ties by smaller distance.
pub fn longest_similar_pair<E: Element, D: SequenceDistance<E>>(
    query: &Sequence<E>,
    dataset: &SequenceDataset<E>,
    distance: &D,
    constraints: BruteConstraints,
    epsilon: f64,
) -> Option<SubsequenceMatch> {
    all_similar_pairs(query, dataset, distance, constraints, epsilon)
        .into_iter()
        .max_by(|a, b| {
            a.query_len().cmp(&b.query_len()).then(
                b.distance
                    .partial_cmp(&a.distance)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        })
}

/// The nearest subsequence pair (Type III ground truth): minimises the
/// distance subject to the length constraints.
pub fn nearest_pair<E: Element, D: SequenceDistance<E>>(
    query: &Sequence<E>,
    dataset: &SequenceDataset<E>,
    distance: &D,
    constraints: BruteConstraints,
) -> Option<(SequenceId, Range<usize>, Range<usize>, f64)> {
    let mut best: Option<(SequenceId, Range<usize>, Range<usize>, f64)> = None;
    for (id, db_seq) in dataset.iter() {
        for (q_range, x_range) in pairs(query, db_seq, constraints) {
            let (sq, sx) = pair_slices(query, db_seq, &q_range, &x_range);
            let d = distance.distance(sq, sx);
            if best.as_ref().is_none_or(|(_, _, _, bd)| d < *bd) {
                best = Some((id, q_range, x_range, d));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_distance::Levenshtein;
    use ssr_sequence::Symbol;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    fn dataset(texts: &[&str]) -> SequenceDataset<Symbol> {
        texts.iter().map(|t| seq(t)).collect()
    }

    #[test]
    fn all_pairs_respect_constraints() {
        let ds = dataset(&["ACGTACGT"]);
        let q = seq("ACGTAC");
        let constraints = BruteConstraints {
            lambda: 4,
            max_shift: 1,
        };
        let results = all_similar_pairs(&q, &ds, &Levenshtein::new(), constraints, 1.0);
        assert!(!results.is_empty());
        for m in &results {
            assert!(m.query_len() >= 4);
            assert!(m.db_len() >= 4);
            assert!((m.query_len() as i64 - m.db_len() as i64).abs() <= 1);
            assert!(m.distance <= 1.0);
        }
    }

    #[test]
    fn longest_pair_is_the_full_overlap() {
        let ds = dataset(&["TTTTACGTACGTTTTT"]);
        let q = seq("ACGTACGT");
        let constraints = BruteConstraints {
            lambda: 4,
            max_shift: 0,
        };
        let best = longest_similar_pair(&q, &ds, &Levenshtein::new(), constraints, 0.0).unwrap();
        assert_eq!(best.query_len(), 8);
        assert_eq!(best.db_range, 4..12);
        assert_eq!(best.distance, 0.0);
    }

    #[test]
    fn nearest_pair_has_zero_distance_for_exact_repeats() {
        let ds = dataset(&["GGGGACGTGGGG", "CCCCCCCC"]);
        let q = seq("AAACGTAA");
        let constraints = BruteConstraints {
            lambda: 4,
            max_shift: 1,
        };
        let (id, _, x_range, d) = nearest_pair(&q, &ds, &Levenshtein::new(), constraints).unwrap();
        assert_eq!(id, SequenceId(0));
        assert!(d <= 1.0);
        assert!(x_range.start >= 2 && x_range.end <= 10);
    }

    #[test]
    fn empty_result_when_nothing_similar() {
        let ds = dataset(&["GGGGGGGG"]);
        let q = seq("AAAAAAAA");
        let constraints = BruteConstraints {
            lambda: 4,
            max_shift: 0,
        };
        assert!(all_similar_pairs(&q, &ds, &Levenshtein::new(), constraints, 0.5).is_empty());
        assert!(longest_similar_pair(&q, &ds, &Levenshtein::new(), constraints, 0.5).is_none());
    }
}
