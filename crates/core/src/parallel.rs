//! Dependency-free worker-pool primitives built on [`std::thread::scope`].
//!
//! The build environment has no crates.io access, so instead of `rayon` the
//! batch engine fans work out with scoped threads: [`parallel_map`] applies a
//! function to every element of a slice using up to `threads` workers pulling
//! indices from a shared atomic cursor, and returns the results **in input
//! order** — `threads = 1` degenerates to a plain sequential loop, so results
//! are bit-identical at every thread count. [`ShardedMemo`] is a
//! mutex-sharded concurrent map used to share verified distances between
//! workers without a global lock.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested thread count: `0` means "one worker per available
/// hardware thread", any other value is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Applies `f` to every element of `items` on up to `threads` scoped workers
/// and returns the results in input order.
///
/// Scheduling is dynamic (workers claim the next unprocessed index from an
/// atomic cursor), so uneven per-item costs balance automatically. With
/// `threads <= 1` — or a single item — the function runs sequentially on the
/// calling thread; because `f` must be deterministic anyway, the output is
/// identical at every thread count, only the wall-clock changes.
///
/// Panics in `f` propagate to the caller once the scope joins.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                collected
                    .lock()
                    .expect("a worker panicked while collecting results")
                    .extend(local);
            });
        }
    });
    let mut results = collected
        .into_inner()
        .expect("a worker panicked while collecting results");
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

/// A concurrent map sharded over `shards` mutexes, so that workers hitting
/// different keys rarely contend on the same lock.
///
/// Values are cloned out on lookup; keep them small (the verification memo
/// stores `f64` distances).
///
/// Every shard also keeps hit/miss/eviction tallies on lock-free atomics
/// (recorded only while [`ssr_obs::enabled`] — the default), so the query
/// server's result cache can expose per-shard telemetry without touching
/// the shard locks at scrape time.
pub struct ShardedMemo<K, V> {
    hasher: RandomState,
    shards: Vec<Shard<K, V>>,
}

struct Shard<K, V> {
    map: Mutex<HashMap<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evicted: AtomicU64,
}

/// One shard's cache accounting: lookup hits and misses, plus entries
/// dropped by [`ShardedMemo::insert_evicting`]'s coarse shard clear.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ShardStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries dropped when a full shard was cleared for a new insert.
    pub evicted: u64,
}

impl<K: Eq + Hash, V: Clone> ShardedMemo<K, V> {
    /// Creates a memo with the given number of shards (at least one).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedMemo {
            hasher: RandomState::new(),
            shards: (0..shards)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    evicted: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % self.shards.len()]
    }

    /// Looks up a key, cloning the value out.
    pub fn get(&self, key: &K) -> Option<V> {
        let shard = self.shard(key);
        let value = shard
            .map
            .lock()
            .expect("memo shard poisoned")
            .get(key)
            .cloned();
        if ssr_obs::enabled() {
            let tally = if value.is_some() {
                &shard.hits
            } else {
                &shard.misses
            };
            tally.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    /// Inserts a value (last writer wins — callers only ever insert the same
    /// deterministic value for a given key).
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key)
            .map
            .lock()
            .expect("memo shard poisoned")
            .insert(key, value);
    }

    /// Inserts under a per-shard capacity: a full shard is emptied before
    /// the new entry goes in. The eviction is deliberately coarse — one
    /// `clear` instead of per-entry bookkeeping — which keeps the hot path
    /// at a single short critical section and bounds total entries at
    /// `shards × shard_capacity`. Replacing an existing key never evicts.
    ///
    /// Used by the query server's result cache; the batch engine's
    /// verification memo lives for one batch and never needs a cap.
    pub fn insert_evicting(&self, key: K, value: V, shard_capacity: usize) {
        let shard = self.shard(&key);
        let mut map = shard.map.lock().expect("memo shard poisoned");
        if map.len() >= shard_capacity.max(1) && !map.contains_key(&key) {
            if ssr_obs::enabled() {
                shard.evicted.fetch_add(map.len() as u64, Ordering::Relaxed);
            }
            map.clear();
        }
        map.insert(key, value);
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("memo shard poisoned").len())
            .sum()
    }

    /// Whether the memo holds no entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard hit/miss/eviction tallies, in shard order. Lock-free: the
    /// counts are read from the shard atomics without taking any map lock.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evicted: s.evicted.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Folds over every resident entry (shard by shard, each under its own
    /// lock). The query server sizes its result cache with this.
    pub fn fold<A>(&self, init: A, mut f: impl FnMut(A, &K, &V) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            let map = shard.map.lock().expect("memo shard poisoned");
            for (k, v) in map.iter() {
                acc = f(acc, k, v);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn parallel_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_balances_uneven_work() {
        // Items with wildly different costs still come back in order.
        let items: Vec<usize> = (0..64).collect();
        let got = parallel_map(4, &items, |_, &x| {
            let mut acc = 0usize;
            for i in 0..(x % 7) * 1000 {
                acc = acc.wrapping_add(i);
            }
            (x, acc)
        });
        for (i, &(x, _)) in got.iter().enumerate() {
            assert_eq!(i, x);
        }
    }

    #[test]
    fn sharded_memo_roundtrips_values() {
        let memo: ShardedMemo<(usize, usize), f64> = ShardedMemo::new(8);
        assert!(memo.is_empty());
        assert_eq!(memo.get(&(1, 2)), None);
        memo.insert((1, 2), 0.5);
        memo.insert((3, 4), 1.5);
        assert_eq!(memo.get(&(1, 2)), Some(0.5));
        assert_eq!(memo.get(&(3, 4)), Some(1.5));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn sharded_memo_is_safe_under_concurrent_writers() {
        let memo: ShardedMemo<usize, usize> = ShardedMemo::new(4);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let memo = &memo;
                scope.spawn(move || {
                    for i in 0..100 {
                        memo.insert(t * 1000 + i, i);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 400);
        assert_eq!(memo.get(&2050), Some(50));
    }
}
