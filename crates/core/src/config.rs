//! Framework configuration.

use std::fmt;

use ssr_distance::SequenceDistance;
use ssr_sequence::{Element, SegmentSpec};

/// Which metric index backs step 4 (the window range queries).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IndexBackend {
    /// The paper's Reference Net (default).
    #[default]
    ReferenceNet,
    /// Cover Tree baseline.
    CoverTree,
    /// Reference-based indexing with Maximum-Variance pivots ("MV-k").
    MvReference {
        /// Number of pivots.
        references: usize,
    },
    /// Naive linear scan (no index).
    LinearScan,
}

impl fmt::Display for IndexBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexBackend::ReferenceNet => write!(f, "reference-net"),
            IndexBackend::CoverTree => write!(f, "cover-tree"),
            IndexBackend::MvReference { references } => write!(f, "mv-{references}"),
            IndexBackend::LinearScan => write!(f, "linear-scan"),
        }
    }
}

/// Errors raised by configuration validation or database construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameworkError {
    /// The configuration is internally inconsistent.
    InvalidConfig(String),
    /// The chosen distance cannot be used with the chosen index.
    UnsupportedDistance(String),
    /// The database holds no window (all sequences shorter than `λ/2`).
    EmptyDatabase,
}

impl fmt::Display for FrameworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameworkError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            FrameworkError::UnsupportedDistance(msg) => write!(f, "unsupported distance: {msg}"),
            FrameworkError::EmptyDatabase => {
                write!(
                    f,
                    "no window could be extracted from the database sequences"
                )
            }
        }
    }
}

impl std::error::Error for FrameworkError {}

/// Parameters of the subsequence-matching framework.
///
/// * `lambda` (`λ`) — minimum length of a reported similar subsequence;
/// * `max_shift` (`λ0`) — maximum temporal shift, i.e. maximum allowed
///   difference between the lengths of the two subsequences of a reported
///   pair;
/// * `epsilon_prime` (`ǫ'`) — base radius of the Reference Net levels;
/// * `max_parents` (`nummax`) — optional cap on Reference Net parents;
/// * `backend` — which metric index to use for step 4;
/// * `max_results` / `max_verifications` — resource caps for step 5.
#[derive(Clone, PartialEq, Debug)]
pub struct FrameworkConfig {
    /// Minimum subsequence length `λ`.
    pub lambda: usize,
    /// Maximum temporal shift `λ0`.
    pub max_shift: usize,
    /// Reference Net base radius `ǫ'`.
    pub epsilon_prime: f64,
    /// Optional Reference Net parent cap `nummax`.
    pub max_parents: Option<usize>,
    /// Index backend for the window range queries.
    pub backend: IndexBackend,
    /// Maximum number of matches returned by a Type I query.
    pub max_results: usize,
    /// Maximum number of verification distance computations per query
    /// (step 5); the search reports the best result found within the budget.
    pub max_verifications: usize,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            lambda: 40,
            max_shift: 2,
            epsilon_prime: 1.0,
            max_parents: None,
            backend: IndexBackend::ReferenceNet,
            max_results: 1000,
            max_verifications: 200_000,
        }
    }
}

impl FrameworkConfig {
    /// Creates a configuration with the given minimum subsequence length `λ`
    /// and defaults for everything else.
    pub fn new(lambda: usize) -> Self {
        FrameworkConfig {
            lambda,
            ..Default::default()
        }
    }

    /// Sets the maximum temporal shift `λ0`.
    pub fn with_max_shift(mut self, max_shift: usize) -> Self {
        self.max_shift = max_shift;
        self
    }

    /// Sets the index backend.
    pub fn with_backend(mut self, backend: IndexBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the Reference Net base radius `ǫ'`.
    pub fn with_epsilon_prime(mut self, epsilon_prime: f64) -> Self {
        self.epsilon_prime = epsilon_prime;
        self
    }

    /// Caps the number of Reference Net parents per window (`nummax`).
    pub fn with_max_parents(mut self, max_parents: usize) -> Self {
        self.max_parents = Some(max_parents);
        self
    }

    /// Window length `l = λ/2` used for dataset segmentation (step 1).
    ///
    /// Lemma 2 requires `l ≤ λ/2` for the filtering to be complete; using
    /// exactly `λ/2` maximises the window length and therefore minimises the
    /// number of windows, which is what the paper does.
    pub fn window_len(&self) -> usize {
        self.lambda / 2
    }

    /// Segment specification for query segmentation (step 3).
    pub fn segment_spec(&self) -> SegmentSpec {
        SegmentSpec::new(self.window_len(), self.max_shift)
    }

    /// Validates the numeric parameters.
    pub fn validate(&self) -> Result<(), FrameworkError> {
        if self.lambda < 2 {
            return Err(FrameworkError::InvalidConfig(
                "lambda must be at least 2 so that windows of length lambda/2 are non-empty".into(),
            ));
        }
        if self.window_len() == 0 {
            return Err(FrameworkError::InvalidConfig(
                "lambda/2 must be at least 1".into(),
            ));
        }
        if self.max_shift >= self.window_len() {
            return Err(FrameworkError::InvalidConfig(format!(
                "max_shift (lambda0 = {}) must be smaller than the window length (lambda/2 = {})",
                self.max_shift,
                self.window_len()
            )));
        }
        if self.epsilon_prime <= 0.0 || !self.epsilon_prime.is_finite() {
            return Err(FrameworkError::InvalidConfig(
                "epsilon_prime must be positive and finite".into(),
            ));
        }
        if let Some(p) = self.max_parents {
            if p == 0 {
                return Err(FrameworkError::InvalidConfig(
                    "max_parents must be at least 1 when set".into(),
                ));
            }
        }
        if self.max_results == 0 || self.max_verifications == 0 {
            return Err(FrameworkError::InvalidConfig(
                "max_results and max_verifications must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Checks that `distance` can be used with the configured backend.
    ///
    /// Metric indexes require a metric distance (Section 3.3); the filtering
    /// itself additionally requires consistency (Section 5). A non-consistent
    /// distance is rejected outright because the candidate shortlist would be
    /// incomplete; a non-metric but consistent distance (DTW) is accepted only
    /// with the [`IndexBackend::LinearScan`] backend.
    pub fn validate_distance<E, D>(&self, distance: &D) -> Result<(), FrameworkError>
    where
        E: Element,
        D: SequenceDistance<E> + ?Sized,
    {
        let props = distance.properties();
        if !props.consistent {
            return Err(FrameworkError::UnsupportedDistance(format!(
                "{} is not consistent; the window filtering of Lemma 3 would miss matches",
                distance.name()
            )));
        }
        if !props.metric && self.backend != IndexBackend::LinearScan {
            return Err(FrameworkError::UnsupportedDistance(format!(
                "{} is not a metric; use IndexBackend::LinearScan (triangle-inequality pruning \
                 would be unsound)",
                distance.name()
            )));
        }
        if props.requires_equal_lengths && self.max_shift > 0 {
            return Err(FrameworkError::UnsupportedDistance(format!(
                "{} requires equal lengths; set max_shift (lambda0) to 0",
                distance.name()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_distance::{Dtw, Euclidean, Levenshtein};
    use ssr_sequence::Symbol;

    #[test]
    fn default_config_is_valid() {
        let cfg = FrameworkConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.window_len(), 20);
        assert_eq!(cfg.segment_spec().min_len(), 18);
        assert_eq!(cfg.segment_spec().max_len(), 22);
    }

    #[test]
    fn builder_style_setters() {
        let cfg = FrameworkConfig::new(20)
            .with_max_shift(3)
            .with_backend(IndexBackend::CoverTree)
            .with_epsilon_prime(0.5)
            .with_max_parents(5);
        cfg.validate().unwrap();
        assert_eq!(cfg.lambda, 20);
        assert_eq!(cfg.max_shift, 3);
        assert_eq!(cfg.backend, IndexBackend::CoverTree);
        assert_eq!(cfg.max_parents, Some(5));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(FrameworkConfig::new(1).validate().is_err());
        assert!(FrameworkConfig::new(20)
            .with_max_shift(10)
            .validate()
            .is_err());
        assert!(FrameworkConfig::new(20)
            .with_epsilon_prime(0.0)
            .validate()
            .is_err());
        let mut cfg = FrameworkConfig::new(20);
        cfg.max_parents = Some(0);
        assert!(cfg.validate().is_err());
        cfg = FrameworkConfig::new(20);
        cfg.max_results = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn distance_validation_enforces_paper_requirements() {
        let cfg = FrameworkConfig::new(20);
        assert!(cfg
            .validate_distance::<Symbol, _>(&Levenshtein::new())
            .is_ok());
        // DTW is consistent but not metric: only allowed with a linear scan.
        assert!(cfg.validate_distance::<Symbol, _>(&Dtw::new()).is_err());
        let scan_cfg = cfg.clone().with_backend(IndexBackend::LinearScan);
        assert!(scan_cfg.validate_distance::<Symbol, _>(&Dtw::new()).is_ok());
        // Euclidean requires equal lengths: incompatible with a non-zero shift.
        assert!(cfg
            .validate_distance::<Symbol, _>(&Euclidean::new())
            .is_err());
        let mut no_shift = FrameworkConfig::new(20);
        no_shift.max_shift = 0;
        assert!(no_shift
            .validate_distance::<Symbol, _>(&Euclidean::new())
            .is_ok());
    }

    #[test]
    fn backend_display() {
        assert_eq!(IndexBackend::ReferenceNet.to_string(), "reference-net");
        assert_eq!(
            IndexBackend::MvReference { references: 50 }.to_string(),
            "mv-50"
        );
        assert_eq!(IndexBackend::default(), IndexBackend::ReferenceNet);
    }
}
