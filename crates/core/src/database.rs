//! The indexed subsequence database (steps 1 and 2 of the framework).

use std::sync::Arc;
use std::time::Instant;

use ssr_distance::{CallCounter, SequenceDistance};
use ssr_index::{
    CountingMetric, CoverTree, ItemId, LinearScan, MvReferenceIndex, QueryMetric, RangeIndex,
    ReferenceNet, ReferenceNetConfig, SpaceStats, WindowSliceMetric,
};
use ssr_sequence::{
    Element, ElementArena, Sequence, SequenceDataset, SequenceId, WindowId, WindowStore,
};

use crate::candidates::SegmentMatch;
use crate::config::{FrameworkConfig, FrameworkError, IndexBackend};

/// The metric the window index operates with: the user's sequence distance
/// over id-addressed window items, resolved to borrowed slices of the shared
/// element arena, and counted.
pub(crate) type WindowMetric<E, D> = CountingMetric<WindowSliceMetric<E, Arc<D>>>;

/// The four index backends over [`WindowId`] items. No backend owns a single
/// element: each stores one machine word per window and resolves it through
/// the [`WindowMetric`]'s shared [`WindowStore`] on every evaluation.
pub(crate) enum WindowIndex<E: Element, D: SequenceDistance<E>> {
    ReferenceNet(ReferenceNet<WindowId, WindowMetric<E, D>>),
    CoverTree(CoverTree<WindowId, WindowMetric<E, D>>),
    MvReference(MvReferenceIndex<WindowId, WindowMetric<E, D>>),
    LinearScan(LinearScan<WindowId, WindowMetric<E, D>>),
}

// Manual impl: a derive would demand `D: Clone`, but the metric only holds
// the distance behind an `Arc`, so cloning never needs to clone `D` itself.
impl<E: Element, D: SequenceDistance<E>> Clone for WindowIndex<E, D> {
    fn clone(&self) -> Self {
        match self {
            WindowIndex::ReferenceNet(idx) => WindowIndex::ReferenceNet(idx.clone()),
            WindowIndex::CoverTree(idx) => WindowIndex::CoverTree(idx.clone()),
            WindowIndex::MvReference(idx) => WindowIndex::MvReference(idx.clone()),
            WindowIndex::LinearScan(idx) => WindowIndex::LinearScan(idx.clone()),
        }
    }
}

impl<E: Element + Send + Sync, D: SequenceDistance<E>> WindowIndex<E, D> {
    /// Range query with a raw query-segment slice probing the id-addressed
    /// items: the counting metric resolves each visited item against the
    /// arena and charges the evaluation exactly as the owned-item layout
    /// did, so results and per-query call counts are bit-identical to it.
    fn range_query(&self, query: &[E], radius: f64) -> Vec<ItemId> {
        // One probe shape for all four backends; a divergence here would
        // silently skew per-backend counts, so keep it in one place.
        macro_rules! probe {
            ($idx:expr) => {{
                let metric = $idx.metric();
                $idx.range_query_with(
                    |item, tau| metric.query_dist_within(query, item, tau),
                    radius,
                )
            }};
        }
        match self {
            WindowIndex::ReferenceNet(idx) => probe!(idx),
            WindowIndex::CoverTree(idx) => probe!(idx),
            WindowIndex::MvReference(idx) => probe!(idx),
            WindowIndex::LinearScan(idx) => probe!(idx),
        }
    }

    fn space_stats(&self) -> SpaceStats {
        match self {
            WindowIndex::ReferenceNet(idx) => idx.space_stats(),
            WindowIndex::CoverTree(idx) => idx.space_stats(),
            WindowIndex::MvReference(idx) => idx.space_stats(),
            WindowIndex::LinearScan(idx) => idx.space_stats(),
        }
    }

    /// Stable backend label for telemetry (the `backend` label of the
    /// `ssr_index_probe_depth` histogram).
    pub(crate) fn backend_name(&self) -> &'static str {
        match self {
            WindowIndex::ReferenceNet(idx) => idx.backend_name(),
            WindowIndex::CoverTree(idx) => idx.backend_name(),
            WindowIndex::MvReference(idx) => idx.backend_name(),
            WindowIndex::LinearScan(idx) => idx.backend_name(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            WindowIndex::ReferenceNet(idx) => idx.len(),
            WindowIndex::CoverTree(idx) => idx.len(),
            WindowIndex::MvReference(idx) => idx.len(),
            WindowIndex::LinearScan(idx) => idx.len(),
        }
    }

    /// Stored item handles in id order (dead Reference-Net nodes included),
    /// for snapshot validation.
    pub(crate) fn stored_items(&self) -> &[WindowId] {
        match self {
            WindowIndex::ReferenceNet(idx) => idx.items(),
            WindowIndex::CoverTree(idx) => idx.items(),
            WindowIndex::MvReference(idx) => idx.items(),
            WindowIndex::LinearScan(idx) => idx.items(),
        }
    }

    /// Redirects the index's counting metric onto fresh counters (replica
    /// cloning: each replica accounts on private atomics).
    fn set_counters(&mut self, counter: CallCounter, cells: ssr_distance::CellCounter) {
        match self {
            WindowIndex::ReferenceNet(idx) => idx.metric_mut().set_counters(counter, cells),
            WindowIndex::CoverTree(idx) => idx.metric_mut().set_counters(counter, cells),
            WindowIndex::MvReference(idx) => idx.metric_mut().set_counters(counter, cells),
            WindowIndex::LinearScan(idx) => idx.metric_mut().set_counters(counter, cells),
        }
    }

    /// Incremental maintenance after an arena append: swaps the grown window
    /// store into the metric (existing [`WindowId`]s keep resolving to the
    /// same elements — the store is a prefix-stable re-partition) and inserts
    /// the new tail ids. The Reference Net and cover tree insert in place
    /// through the same `insert` loop their bulk `extend` uses, so the
    /// resulting structure is bit-identical to a from-scratch build over the
    /// grown id range; the MV index re-pivots lazily inside `extend`, which
    /// rebuilds its pivot table as a pure function of the final item set.
    fn append_windows(&mut self, windows: Arc<WindowStore<E>>, new_ids: std::ops::Range<usize>) {
        let ids = new_ids.map(WindowId);
        match self {
            WindowIndex::ReferenceNet(idx) => {
                idx.metric_mut().inner_mut().set_windows(windows);
                idx.extend(ids);
            }
            WindowIndex::CoverTree(idx) => {
                idx.metric_mut().inner_mut().set_windows(windows);
                idx.extend(ids);
            }
            WindowIndex::MvReference(idx) => {
                idx.metric_mut().inner_mut().set_windows(windows);
                idx.extend(ids);
                debug_assert!(!idx.is_dirty(), "extend leaves the MV index rebuilt");
            }
            WindowIndex::LinearScan(idx) => {
                idx.metric_mut().inner_mut().set_windows(windows);
                idx.extend(ids);
            }
        }
    }
}

/// The result of step 4 over one query: every (segment, window) pair within
/// radius `ε`, together with the distance evaluations the index spent
/// producing them.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SegmentScan {
    /// The matched (query segment, database window) pairs.
    pub matches: Vec<SegmentMatch>,
    /// Distance evaluations performed inside the index to produce them.
    pub distance_calls: u64,
    /// Dynamic-program cells those evaluations actually filled. Thresholded
    /// kernels cut this number without changing `distance_calls`.
    pub dp_cells: u64,
    /// Evaluations resolved by a cheap lower bound alone.
    pub pruned_by_lower_bound: u64,
}

/// Prefix sums of a sequence's per-element ground distances to the gap
/// element, plus whether those sums are exact (integral, below 2⁵³ — the
/// precondition for pruning on a float comparison without ever misclassifying
/// a borderline pair). Gives the `O(1)`-per-range inputs of the ERP gap-sum
/// lower bound; built once per database sequence at build/load time and once
/// per query at query time, fixing the old wart where `erp_lower_bound`
/// rescanned both subsequences for every candidate pair.
#[derive(Clone)]
pub(crate) struct GapPrefix {
    prefix: Vec<f64>,
    exact: bool,
}

impl GapPrefix {
    /// Scans `elements` once, accumulating in element order. The exactness
    /// verdict comes from the same shared scan the ERP kernel uses
    /// (`ssr_distance::scan_gap_costs_with`), so kernel and cascade can
    /// never disagree on which pairs are prunable.
    pub(crate) fn build<E: Element>(elements: &[E]) -> GapPrefix {
        let mut prefix = Vec::with_capacity(elements.len() + 1);
        prefix.push(0.0);
        let scan = ssr_distance::scan_gap_costs_with(elements, |running| prefix.push(running));
        GapPrefix {
            prefix,
            exact: scan.integral,
        }
    }

    /// Gap sum of the half-open element range, or `None` when the sums are
    /// not exact (pruning on them could flip a borderline comparison).
    pub(crate) fn range_sum(&self, range: &std::ops::Range<usize>) -> Option<f64> {
        if !self.exact {
            return None;
        }
        Some(self.prefix[range.end] - self.prefix[range.start])
    }
}

impl SegmentScan {
    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// Whether no segment matched any window.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }
}

/// Builder for a [`SubsequenceDatabase`].
pub struct DatabaseBuilder<E: Element, D: SequenceDistance<E>> {
    config: FrameworkConfig,
    distance: Arc<D>,
    dataset: SequenceDataset<E>,
    build_threads: usize,
}

impl<E: Element + Send + Sync, D: SequenceDistance<E>> DatabaseBuilder<E, D> {
    /// Starts a builder with the given configuration and distance.
    pub fn new(config: FrameworkConfig, distance: D) -> Self {
        DatabaseBuilder {
            config,
            distance: Arc::new(distance),
            dataset: SequenceDataset::new(),
            build_threads: 1,
        }
    }

    /// Number of worker threads used for the index build (step 2): the
    /// backends that support deterministic parallel construction (MV pivot
    /// tables, Reference Net child-distance fan-out) use this count. Window
    /// partitioning (step 1) needs no workers at all anymore — windows are
    /// `(sequence, start, len)` views derived from the arena's boundaries,
    /// so producing them copies nothing. `0` means one worker per available
    /// hardware thread; the default of `1` builds sequentially. The
    /// resulting database is identical at every thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.build_threads = crate::parallel::resolve_threads(threads);
        self
    }

    /// Adds one sequence to the database.
    pub fn add_sequence(mut self, sequence: Sequence<E>) -> Self {
        self.dataset.push(sequence);
        self
    }

    /// Adds every sequence of a dataset to the database.
    pub fn add_dataset(mut self, dataset: &SequenceDataset<E>) -> Self {
        for (_, s) in dataset.iter() {
            self.dataset.push(s.clone());
        }
        self
    }

    /// Validates the configuration, gathers every dataset element into one
    /// flat [`ElementArena`], derives the `λ/2` window views over it and
    /// builds the chosen metric index over their ids.
    pub fn build(self) -> Result<SubsequenceDatabase<E, D>, FrameworkError> {
        self.config.validate()?;
        self.config
            .validate_distance::<E, _>(self.distance.as_ref())?;
        // Step 1: one contiguous copy of all elements; the window views are
        // derived from the arena's sequence boundaries without touching a
        // single element, so there is nothing left to parallelise here.
        let arena = Arc::new(ElementArena::from_dataset(&self.dataset));
        let windows = Arc::new(WindowStore::partition(arena, self.config.window_len()));
        if windows.is_empty() {
            return Err(FrameworkError::EmptyDatabase);
        }
        let counter = CallCounter::new();
        let cell_counter = ssr_distance::CellCounter::new();
        let metric = CountingMetric::new(
            WindowSliceMetric::new(Arc::clone(&self.distance), Arc::clone(&windows)),
            counter.clone(),
        )
        .with_cell_counter(cell_counter.clone());
        // Step 2: the index stores one WindowId per window — the old
        // per-window `Vec<E>` clone is gone; every build-time distance
        // resolves both ids to arena slices through the metric.
        let window_ids = (0..windows.len()).map(WindowId);
        let index = match self.config.backend {
            IndexBackend::ReferenceNet => {
                let mut rn_config =
                    ReferenceNetConfig::with_epsilon_prime(self.config.epsilon_prime);
                if let Some(p) = self.config.max_parents {
                    rn_config = rn_config.with_max_parents(p);
                }
                let mut idx = ReferenceNet::with_config(metric, rn_config)
                    .with_build_threads(self.build_threads);
                idx.extend(window_ids);
                WindowIndex::ReferenceNet(idx)
            }
            IndexBackend::CoverTree => {
                let mut idx = CoverTree::with_epsilon_prime(metric, self.config.epsilon_prime);
                idx.extend(window_ids);
                WindowIndex::CoverTree(idx)
            }
            IndexBackend::MvReference { references } => {
                let mut idx = MvReferenceIndex::new(metric, references)
                    .with_build_threads(self.build_threads);
                idx.extend(window_ids);
                WindowIndex::MvReference(idx)
            }
            IndexBackend::LinearScan => {
                let mut idx = LinearScan::new(metric);
                idx.extend(window_ids);
                WindowIndex::LinearScan(idx)
            }
        };
        // Remember how much the build cost, then reset the shared counters so
        // that subsequent reads reflect query-time work only.
        let build_distance_calls = counter.reset();
        let build_dp_cells = cell_counter.reset();
        let gap_prefixes = build_gap_prefixes(self.distance.as_ref(), windows.arena());
        let tombstones = vec![false; self.dataset.len()];
        let probe_depth = probe_depth_histogram(index.backend_name());
        Ok(SubsequenceDatabase {
            probe_depth,
            index,
            counter,
            cell_counter,
            build_distance_calls,
            build_dp_cells,
            gap_prefixes,
            tombstones,
            config: self.config,
            distance: self.distance,
            dataset: Arc::new(self.dataset),
            windows,
        })
    }
}

/// Per-sequence gap prefix tables for the verification cascade, built only
/// when the distance can prune on gap sums (ERP-style measures). The scans
/// run over the arena's borrowed sequence slices — the same elements the
/// kernels see — so cascade and kernel can never disagree.
pub(crate) fn build_gap_prefixes<E: Element, D: SequenceDistance<E>>(
    distance: &D,
    arena: &ElementArena<E>,
) -> Option<Vec<GapPrefix>> {
    if !distance.uses_gap_sums() {
        return None;
    }
    Some(
        (0..arena.sequence_count())
            .map(|i| {
                GapPrefix::build(
                    arena
                        .sequence_slice(SequenceId(i))
                        .expect("sequence ids are dense"),
                )
            })
            .collect(),
    )
}

/// A database of sequences prepared for subsequence retrieval: the sequences,
/// their fixed-length windows and a metric index over the windows.
///
/// Fields are crate-visible so that [`crate::storage`] can snapshot a built
/// database and reassemble a loaded one without exposing setters.
pub struct SubsequenceDatabase<E: Element, D: SequenceDistance<E>> {
    pub(crate) config: FrameworkConfig,
    pub(crate) distance: Arc<D>,
    /// Shared with replica engines ([`Self::clone_replica`]): the labelled
    /// per-sequence view of the same elements the arena owns.
    pub(crate) dataset: Arc<SequenceDataset<E>>,
    /// Shared with the index metric: the store (and its arena) is the single
    /// resident copy of every window's elements.
    pub(crate) windows: Arc<WindowStore<E>>,
    pub(crate) index: WindowIndex<E, D>,
    pub(crate) counter: CallCounter,
    pub(crate) cell_counter: ssr_distance::CellCounter,
    pub(crate) build_distance_calls: u64,
    pub(crate) build_dp_cells: u64,
    /// Per-sequence gap prefix tables for the verification lower-bound
    /// cascade; `None` when the distance cannot prune on gap sums.
    pub(crate) gap_prefixes: Option<Vec<GapPrefix>>,
    /// One flag per stored sequence: `true` marks a removed sequence.
    /// Removal never unwinds the arena, the window views or the index items
    /// — those stay physically present so outstanding [`WindowId`]s keep
    /// resolving — it only flips this flag, and the query path filters
    /// matches from dead sequences before verification. [`crate::storage`]
    /// persists the set and a compaction folds it away by rebuilding.
    pub(crate) tombstones: Vec<bool>,
    /// Global telemetry histogram of distance evaluations per index probe,
    /// labelled by backend. A handle into [`ssr_obs::global`], resolved once
    /// at build/load time so the query path never touches the registry lock.
    pub(crate) probe_depth: ssr_obs::Histogram,
}

/// Resolves the shared probe-depth histogram for `backend` from the global
/// registry (registration is idempotent, so every database and replica of
/// the same backend feeds the same series).
pub(crate) fn probe_depth_histogram(backend: &'static str) -> ssr_obs::Histogram {
    ssr_obs::global().histogram_with(
        "ssr_index_probe_depth",
        "Distance evaluations spent inside the index per range query.",
        Some(("backend", backend.to_string())),
    )
}

impl<E: Element + Send + Sync, D: SequenceDistance<E>> SubsequenceDatabase<E, D> {
    /// Starts a [`DatabaseBuilder`].
    pub fn builder(config: FrameworkConfig, distance: D) -> DatabaseBuilder<E, D> {
        DatabaseBuilder::new(config, distance)
    }

    /// The framework configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.config
    }

    /// The distance measure in use.
    pub fn distance(&self) -> &D {
        &self.distance
    }

    /// The stored sequences.
    pub fn dataset(&self) -> &SequenceDataset<E> {
        &self.dataset
    }

    /// The window store (provenance of every indexed window).
    pub fn windows(&self) -> &WindowStore<E> {
        &self.windows
    }

    /// Number of indexed windows.
    pub fn window_count(&self) -> usize {
        self.index.len()
    }

    /// Space accounting of the underlying index (Figures 5–7), with the
    /// shared element arena's bytes attributed — the index only borrows the
    /// arena through its metric, so the framework layer, which owns it,
    /// fills in `arena_bytes`. All byte counters are computed from lengths,
    /// never allocator capacities, and are therefore identical on every
    /// machine (the bench gates them in CI).
    pub fn index_space_stats(&self) -> SpaceStats {
        let mut stats = self.index.space_stats();
        stats.arena_bytes = self.windows.arena().resident_bytes();
        stats
    }

    /// Total deterministic resident bytes of the window/index layout: the
    /// shared element arena, the window store's view table and the index's
    /// per-item handles. The single definition of the footprint behind the
    /// CI-gated `bytes_per_window` — `bench` and `ssr info` both report it
    /// from here, so the gated and the printed figure cannot diverge.
    pub fn resident_window_bytes(&self) -> usize {
        let stats = self.index_space_stats();
        stats.arena_bytes + stats.item_bytes + self.windows.view_bytes()
    }

    /// Number of distance evaluations spent building the index.
    pub fn build_distance_calls(&self) -> u64 {
        self.build_distance_calls
    }

    /// Number of DP cells those build-time evaluations filled.
    pub fn build_dp_cells(&self) -> u64 {
        self.build_dp_cells
    }

    /// Shared counter of query-time distance evaluations made by the index.
    pub fn query_distance_counter(&self) -> &CallCounter {
        &self.counter
    }

    /// Shared counter of query-time DP cells evaluated inside the index
    /// (alongside [`Self::query_distance_counter`]; verification cells are
    /// attributed per query in [`crate::QueryStats::dp_cells_evaluated`]).
    pub fn query_dp_cell_counter(&self) -> &ssr_distance::CellCounter {
        &self.cell_counter
    }

    /// A read-only replica for concurrent serving: shares the element arena,
    /// window store, dataset, distance and gap-prefix tables with `self`
    /// (cheap `Arc` clones — the elements are never copied), duplicates only
    /// the index's machine-word item handles and navigation structure, and
    /// gives the replica private query counters so concurrent queries never
    /// contend on — or cross-attribute to — another replica's atomics.
    ///
    /// Replicas answer queries bit-identically to the original. Mutating a
    /// replica (or the original) via [`Self::append_sequence`] is safe but
    /// forfeits sharing for the mutated layers (`Arc::make_mut` copies).
    pub fn clone_replica(&self) -> Self {
        let counter = CallCounter::new();
        let cell_counter = ssr_distance::CellCounter::new();
        let mut index = self.index.clone();
        index.set_counters(counter.clone(), cell_counter.clone());
        SubsequenceDatabase {
            config: self.config.clone(),
            distance: Arc::clone(&self.distance),
            dataset: Arc::clone(&self.dataset),
            windows: Arc::clone(&self.windows),
            index,
            counter,
            cell_counter,
            build_distance_calls: self.build_distance_calls,
            build_dp_cells: self.build_dp_cells,
            gap_prefixes: self.gap_prefixes.clone(),
            tombstones: self.tombstones.clone(),
            probe_depth: self.probe_depth.clone(),
        }
    }

    /// Appends one sequence to the database, maintaining every layer
    /// incrementally: the element arena grows (existing element ranges are
    /// untouched, so every outstanding window view keeps resolving to the
    /// same elements), the window store is re-partitioned (a prefix-stable
    /// operation — ids `0..old_len` are unchanged), and the new tail windows
    /// are inserted into the index in id order. Because the bulk build is
    /// itself an in-order insert loop (Reference Net, cover tree, linear
    /// scan) or a pure function of the final item set (MV pivot table), a
    /// database grown by appends answers queries bit-identically to one
    /// built from scratch over the same sequences.
    ///
    /// The incremental index work is folded into
    /// [`Self::build_distance_calls`] / [`Self::build_dp_cells`] so the
    /// query-time counters keep reading zero outside of queries.
    pub fn append_sequence(&mut self, sequence: Sequence<E>) -> SequenceId {
        let old_window_count = self.windows.len();
        // O(n) arena copy per append: correctness-first — the store's
        // outstanding `Arc` clones (index metric, in-flight snapshots) must
        // keep observing the pre-append bounds, so we never mutate shared
        // state in place.
        let mut arena = ElementArena::clone(self.windows.arena());
        let arena_id = arena.push_sequence(sequence.elements());
        let windows = Arc::new(WindowStore::partition(
            Arc::new(arena),
            self.config.window_len(),
        ));
        self.index
            .append_windows(Arc::clone(&windows), old_window_count..windows.len());
        self.windows = windows;
        if let Some(prefixes) = &mut self.gap_prefixes {
            prefixes.push(GapPrefix::build(sequence.elements()));
        }
        // `make_mut` copies only when replicas hold the dataset — a mutable
        // database is normally its sole owner and mutates in place.
        let id = Arc::make_mut(&mut self.dataset).push(sequence);
        debug_assert_eq!(id, arena_id, "dataset and arena assign ids in lockstep");
        self.tombstones.push(false);
        self.build_distance_calls += self.counter.reset();
        self.build_dp_cells += self.cell_counter.reset();
        id
    }

    /// Tombstones one sequence: its windows stay in the arena and the index
    /// (structural deletion would reshuffle every backend differently), but
    /// the query path drops their matches before verification and
    /// [`Self::sequence`] stops resolving the id. Returns `false` when the
    /// id is unknown or already removed. A snapshot written afterwards
    /// persists the tombstone; rebuilding from the live sequences (see the
    /// WAL layer's compaction) reclaims the space.
    pub fn remove_sequence(&mut self, id: SequenceId) -> bool {
        match self.tombstones.get_mut(id.0) {
            Some(dead) if !*dead => {
                *dead = true;
                true
            }
            _ => false,
        }
    }

    /// Whether `id` names a stored, non-tombstoned sequence.
    pub fn is_live(&self, id: SequenceId) -> bool {
        self.tombstones.get(id.0).is_some_and(|dead| !dead)
    }

    /// Number of live (non-tombstoned) sequences.
    pub fn live_sequence_count(&self) -> usize {
        self.tombstones.iter().filter(|dead| !**dead).count()
    }

    /// Ids of tombstoned sequences in increasing order (the snapshot layer
    /// persists exactly this set).
    pub fn tombstoned_sequences(&self) -> Vec<SequenceId> {
        self.tombstones
            .iter()
            .enumerate()
            .filter(|(_, dead)| **dead)
            .map(|(i, _)| SequenceId(i))
            .collect()
    }

    /// Step 4: matches every query segment (step 3) against the indexed
    /// windows within radius `epsilon`.
    pub fn matching_segments(&self, query: &Sequence<E>, epsilon: f64) -> SegmentScan {
        self.matching_segments_ctx(query, epsilon, &mut crate::query::ExecCtx::detached())
    }

    /// [`Self::matching_segments`] with stage timing attribution. Index
    /// distance calls are counted through [`CallCounter::thread_total`] so the
    /// attribution stays exact (and bit-identical to a sequential run) when
    /// several batch-engine workers query the shared index concurrently.
    pub(crate) fn matching_segments_ctx(
        &self,
        query: &Sequence<E>,
        epsilon: f64,
        ctx: &mut crate::query::ExecCtx<'_>,
    ) -> SegmentScan {
        let spec = self.config.segment_spec();
        let segment_started = Instant::now();
        let segments = ssr_sequence::extract_segments(query, spec);
        let segment_ns = segment_started.elapsed().as_nanos() as u64;
        ctx.timings.segment_ns += segment_ns;
        ctx.span("segment", segment_ns);
        let filter_started = Instant::now();
        let before = CallCounter::thread_total();
        let cells_before = ssr_distance::dp_cells_thread_total();
        let prunes_before = ssr_distance::lower_bound_prunes_thread_total();
        let mut matches = Vec::new();
        for segment in &segments {
            let probe_before = CallCounter::thread_total();
            let ids = self.index.range_query(&segment.data, epsilon);
            self.probe_depth
                .observe(CallCounter::thread_total() - probe_before);
            for id in ids {
                let window_id = WindowId(id.0);
                let window = self
                    .windows
                    .get(window_id)
                    .expect("index ids correspond to window ids");
                // Tombstone filter: windows of removed sequences stay in the
                // index (the probe above may still have spent distance calls
                // on them — inherent to tombstoning), but their matches are
                // dropped here, before the recompute and before verification
                // ever sees the candidate.
                if self.tombstones[window.sequence.0] {
                    continue;
                }
                let window_slice = self
                    .windows
                    .resolve(&window)
                    .expect("window views resolve against their own arena");
                // The index certified d ≤ ε, so the thresholded recompute
                // always completes; the fallback covers the one legitimate
                // exception — bulk-accepted items whose triangle-inequality
                // certificate was rounded right at the radius boundary.
                let distance = self
                    .distance
                    .distance_within(&segment.data, window_slice, epsilon)
                    .unwrap_or_else(|| self.distance.distance(&segment.data, window_slice));
                matches.push(SegmentMatch {
                    window: window_id,
                    sequence: window.sequence,
                    window_index: window.window_index(self.windows.window_len()),
                    db_start: window.start,
                    query_start: segment.start,
                    query_len: segment.len(),
                    distance,
                });
            }
        }
        let distance_calls = CallCounter::thread_total() - before;
        let dp_cells = ssr_distance::dp_cells_thread_total() - cells_before;
        let pruned_by_lower_bound = ssr_distance::lower_bound_prunes_thread_total() - prunes_before;
        let filter_ns = filter_started.elapsed().as_nanos() as u64;
        ctx.timings.filter_ns += filter_ns;
        ctx.span("filter", filter_ns);
        SegmentScan {
            matches,
            distance_calls,
            dp_cells,
            pruned_by_lower_bound,
        }
    }

    /// Looks up a stored sequence. Tombstoned sequences are gone from this
    /// view: the id resolves to `None` exactly as an unknown id does.
    pub fn sequence(&self, id: SequenceId) -> Option<&Sequence<E>> {
        if !self.is_live(id) {
            return None;
        }
        self.dataset.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_distance::{Dtw, Levenshtein};
    use ssr_sequence::Symbol;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    fn small_config() -> FrameworkConfig {
        FrameworkConfig::new(8).with_max_shift(1)
    }

    #[test]
    fn build_partitions_and_indexes_windows() {
        let db = SubsequenceDatabase::builder(small_config(), Levenshtein::new())
            .add_sequence(seq("ACDEFGHIKLMNPQRSTVWY"))
            .add_sequence(seq("ACDEFGHI"))
            .build()
            .unwrap();
        // 20/4 + 8/4 = 5 + 2 windows of length lambda/2 = 4.
        assert_eq!(db.window_count(), 7);
        assert_eq!(db.windows().window_len(), 4);
        assert!(db.build_distance_calls() > 0);
        assert_eq!(db.query_distance_counter().get(), 0);
    }

    #[test]
    fn all_backends_build_and_answer_segment_queries() {
        for backend in [
            IndexBackend::ReferenceNet,
            IndexBackend::CoverTree,
            IndexBackend::MvReference { references: 3 },
            IndexBackend::LinearScan,
        ] {
            let db = SubsequenceDatabase::builder(
                small_config().with_backend(backend),
                Levenshtein::new(),
            )
            .add_sequence(seq("ACDEFGHIKLMNPQRSTVWYACDEFGHI"))
            .build()
            .unwrap();
            let scan = db.matching_segments(&seq("ACDEFGHI"), 1.0);
            assert!(
                !scan.is_empty(),
                "backend {backend} found no matching windows"
            );
            assert!(scan.matches.iter().all(|m| m.distance <= 1.0));
            if backend == IndexBackend::LinearScan {
                assert!(scan.distance_calls > 0);
            }
        }
    }

    #[test]
    fn empty_database_is_rejected() {
        let result = SubsequenceDatabase::builder(small_config(), Levenshtein::new())
            .add_sequence(seq("ACk"))
            .build();
        assert!(matches!(result, Err(FrameworkError::EmptyDatabase)));
    }

    #[test]
    fn non_metric_distance_requires_linear_scan() {
        let err = SubsequenceDatabase::<Symbol, _>::builder(small_config(), Dtw::new())
            .add_sequence(seq("ACDEFGHIKLMNPQRSTVWY"))
            .build();
        assert!(matches!(err, Err(FrameworkError::UnsupportedDistance(_))));

        let ok = SubsequenceDatabase::<Symbol, _>::builder(
            small_config().with_backend(IndexBackend::LinearScan),
            Dtw::new(),
        )
        .add_sequence(seq("ACDEFGHIKLMNPQRSTVWY"))
        .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn matching_segments_reports_provenance() {
        let db = SubsequenceDatabase::builder(small_config(), Levenshtein::new())
            .add_sequence(seq("AAAACCCCGGGGTTTT"))
            .build()
            .unwrap();
        let scan = db.matching_segments(&seq("CCCC"), 0.0);
        assert!(!scan.is_empty());
        let matches = &scan.matches;
        for m in matches {
            assert_eq!(m.sequence, SequenceId(0));
            let window = db.windows().get(m.window).unwrap();
            assert_eq!(window.start, m.db_start);
            assert_eq!(m.distance, 0.0);
        }
        // The exact-match window is the second one (elements 4..8).
        assert!(matches.iter().any(|m| m.db_start == 4));
    }

    #[test]
    fn append_matches_from_scratch_build_on_every_backend() {
        for backend in [
            IndexBackend::ReferenceNet,
            IndexBackend::CoverTree,
            IndexBackend::MvReference { references: 3 },
            IndexBackend::LinearScan,
        ] {
            let mut grown = SubsequenceDatabase::builder(
                small_config().with_backend(backend),
                Levenshtein::new(),
            )
            .add_sequence(seq("ACDEFGHIKLMNPQRSTVWY"))
            .build()
            .unwrap();
            let id = grown.append_sequence(seq("ACDEFGHI"));
            assert_eq!(id, SequenceId(1));
            assert_eq!(
                grown.query_distance_counter().get(),
                0,
                "append work must fold into build counters"
            );
            let scratch = SubsequenceDatabase::builder(
                small_config().with_backend(backend),
                Levenshtein::new(),
            )
            .add_sequence(seq("ACDEFGHIKLMNPQRSTVWY"))
            .add_sequence(seq("ACDEFGHI"))
            .build()
            .unwrap();
            assert_eq!(grown.window_count(), scratch.window_count());
            assert_eq!(grown.index.stored_items(), scratch.index.stored_items());
            let a = grown.matching_segments(&seq("ACDEFGHI"), 1.0);
            let b = scratch.matching_segments(&seq("ACDEFGHI"), 1.0);
            assert_eq!(a, b, "backend {backend} diverged after append");
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn short_append_adds_no_windows_but_stays_queryable() {
        let mut db = SubsequenceDatabase::builder(small_config(), Levenshtein::new())
            .add_sequence(seq("ACDEFGHIKLMNPQRSTVWY"))
            .build()
            .unwrap();
        let before = db.window_count();
        // Shorter than window_len = 4: no window fits, but the sequence is
        // stored and the database still answers queries.
        let id = db.append_sequence(seq("AC"));
        assert_eq!(db.window_count(), before);
        assert!(db.sequence(id).is_some());
        assert!(!db.matching_segments(&seq("ACDEFGHI"), 1.0).is_empty());
    }

    #[test]
    fn remove_tombstones_and_filters_matches() {
        let mut db = SubsequenceDatabase::builder(small_config(), Levenshtein::new())
            .add_sequence(seq("AAAACCCCGGGGTTTT"))
            .add_sequence(seq("CCCCAAAA"))
            .build()
            .unwrap();
        let windows_before = db.window_count();
        assert!(db.remove_sequence(SequenceId(0)));
        // Second removal and unknown ids are no-ops.
        assert!(!db.remove_sequence(SequenceId(0)));
        assert!(!db.remove_sequence(SequenceId(9)));
        assert!(!db.is_live(SequenceId(0)));
        assert!(db.sequence(SequenceId(0)).is_none());
        assert_eq!(db.live_sequence_count(), 1);
        assert_eq!(db.tombstoned_sequences(), vec![SequenceId(0)]);
        // Windows stay physically present; matches from the dead sequence
        // are filtered at query time.
        assert_eq!(db.window_count(), windows_before);
        let scan = db.matching_segments(&seq("CCCC"), 0.0);
        assert!(!scan.is_empty());
        assert!(scan.matches.iter().all(|m| m.sequence == SequenceId(1)));
    }

    #[test]
    fn index_space_stats_are_populated() {
        let db = SubsequenceDatabase::builder(small_config(), Levenshtein::new())
            .add_sequence(seq("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY"))
            .build()
            .unwrap();
        let stats = db.index_space_stats();
        assert_eq!(stats.items, db.window_count());
        assert!(stats.entries >= stats.items - 1);
    }
}
