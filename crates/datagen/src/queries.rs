//! Query generation with planted answers.
//!
//! The paper's retrieval experiments issue queries whose best matches are
//! known to exist in the database. We reproduce that by *planting*: a query is
//! built by excising a subsequence from a database sequence, perturbing it
//! (substitutions for strings, jitter for time series), and optionally
//! surrounding it with random context so that only a subsequence of the query
//! — not the whole query — matches the database.

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use ssr_sequence::{Element, Pitch, Point2D, Sequence, SequenceDataset, SequenceId, Symbol};

use crate::rng;

/// Configuration for planted query generation.
#[derive(Clone, Debug)]
pub struct QueryConfig {
    /// Length of the planted (excised) subsequence.
    pub planted_len: usize,
    /// Number of random context elements prepended and appended.
    pub context_len: usize,
    /// Fraction of planted positions to perturb.
    pub perturbation_rate: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            planted_len: 40,
            context_len: 20,
            perturbation_rate: 0.05,
            seed: 0x0BAD_5EED,
        }
    }
}

/// A generated query together with the provenance of its planted subsequence,
/// so tests and experiments can verify that retrieval finds it.
#[derive(Clone, Debug)]
pub struct PlantedQuery<E> {
    /// The query sequence handed to the framework.
    pub query: Sequence<E>,
    /// The database sequence the planted subsequence was excised from.
    pub source: SequenceId,
    /// Half-open range of the planted subsequence within the source sequence.
    pub source_range: std::ops::Range<usize>,
    /// Half-open range of the planted subsequence within the query.
    pub query_range: std::ops::Range<usize>,
}

/// How to perturb and pad elements of a particular type when planting.
pub trait QueryMutator<E: Element> {
    /// Returns a perturbed copy of an element.
    fn perturb(&self, element: &E, rng: &mut ChaCha8Rng) -> E;
    /// Returns a random "context" element unrelated to the database.
    fn random_element(&self, rng: &mut ChaCha8Rng) -> E;
}

/// Default mutator for protein/DNA symbols: substitution by a random
/// amino-acid letter.
pub struct SymbolMutator;

impl QueryMutator<Symbol> for SymbolMutator {
    fn perturb(&self, _element: &Symbol, rng: &mut ChaCha8Rng) -> Symbol {
        self.random_element(rng)
    }

    fn random_element(&self, rng: &mut ChaCha8Rng) -> Symbol {
        let alphabet = ssr_sequence::Alphabet::protein();
        *alphabet.symbols().choose(rng).expect("non-empty alphabet")
    }
}

/// Default mutator for pitches: move by at most one semitone / random pitch
/// for context.
pub struct PitchMutator;

impl QueryMutator<Pitch> for PitchMutator {
    fn perturb(&self, element: &Pitch, rng: &mut ChaCha8Rng) -> Pitch {
        let delta: i16 = rng.gen_range(-1..=1);
        Pitch::clamped(element.value() + delta)
    }

    fn random_element(&self, rng: &mut ChaCha8Rng) -> Pitch {
        Pitch(rng.gen_range(0..=11))
    }
}

/// Default mutator for trajectory points: small Gaussian-ish jitter / far-away
/// random points for context.
pub struct PointMutator {
    /// Magnitude of the jitter applied to planted points.
    pub jitter: f64,
    /// Bounding box half-width used for random context points.
    pub extent: f64,
}

impl Default for PointMutator {
    fn default() -> Self {
        PointMutator {
            jitter: 0.5,
            extent: 100.0,
        }
    }
}

impl QueryMutator<Point2D> for PointMutator {
    fn perturb(&self, element: &Point2D, rng: &mut ChaCha8Rng) -> Point2D {
        Point2D::new(
            element.x + rng.gen_range(-self.jitter..=self.jitter),
            element.y + rng.gen_range(-self.jitter..=self.jitter),
        )
    }

    fn random_element(&self, rng: &mut ChaCha8Rng) -> Point2D {
        Point2D::new(
            rng.gen_range(-self.extent..=self.extent),
            rng.gen_range(-self.extent..=self.extent),
        )
    }
}

/// Builds a planted query from `dataset` using the given mutator.
///
/// Returns `None` when no database sequence is long enough to excise
/// `config.planted_len` elements from.
pub fn plant_query<E: Element, Mtr: QueryMutator<E>>(
    dataset: &SequenceDataset<E>,
    mutator: &Mtr,
    config: &QueryConfig,
) -> Option<PlantedQuery<E>> {
    assert!(config.planted_len > 0, "planted length must be positive");
    assert!((0.0..=1.0).contains(&config.perturbation_rate));
    let mut rng = rng(config.seed);
    let eligible: Vec<SequenceId> = dataset
        .iter()
        .filter(|(_, s)| s.len() >= config.planted_len)
        .map(|(id, _)| id)
        .collect();
    let source = *eligible.choose(&mut rng)?;
    let sequence = dataset.get(source).expect("id from iteration");
    let start = rng.gen_range(0..=sequence.len() - config.planted_len);
    let source_range = start..start + config.planted_len;
    let planted: Vec<E> = sequence.elements()[source_range.clone()]
        .iter()
        .map(|e| {
            if rng.gen_bool(config.perturbation_rate) {
                mutator.perturb(e, &mut rng)
            } else {
                e.clone()
            }
        })
        .collect();
    let mut elements: Vec<E> = Vec::with_capacity(config.planted_len + 2 * config.context_len);
    for _ in 0..config.context_len {
        elements.push(mutator.random_element(&mut rng));
    }
    let query_start = elements.len();
    elements.extend(planted);
    let query_end = elements.len();
    for _ in 0..config.context_len {
        elements.push(mutator.random_element(&mut rng));
    }
    Some(PlantedQuery {
        query: Sequence::new(elements),
        source,
        source_range,
        query_range: query_start..query_end,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proteins::{generate_proteins, ProteinConfig};
    use crate::songs::{generate_songs, SongsConfig};
    use ssr_distance::{Erp, Levenshtein, SequenceDistance};

    #[test]
    fn planted_query_has_correct_shape_and_provenance() {
        let ds = generate_proteins(&ProteinConfig {
            num_sequences: 5,
            min_len: 100,
            max_len: 150,
            ..Default::default()
        });
        let config = QueryConfig {
            planted_len: 40,
            context_len: 10,
            perturbation_rate: 0.1,
            seed: 1,
        };
        let planted = plant_query(&ds, &SymbolMutator, &config).unwrap();
        assert_eq!(planted.query.len(), 40 + 2 * 10);
        assert_eq!(planted.query_range, 10..50);
        assert_eq!(planted.source_range.len(), 40);
        assert!(ds.get(planted.source).is_some());
    }

    #[test]
    fn planted_region_is_close_to_its_source() {
        let ds = generate_proteins(&ProteinConfig {
            num_sequences: 5,
            min_len: 100,
            max_len: 150,
            ..Default::default()
        });
        let config = QueryConfig {
            planted_len: 40,
            context_len: 10,
            perturbation_rate: 0.05,
            seed: 2,
        };
        let planted = plant_query(&ds, &SymbolMutator, &config).unwrap();
        let source = ds.get(planted.source).unwrap();
        let original = &source.elements()[planted.source_range.clone()];
        let in_query = &planted.query.elements()[planted.query_range.clone()];
        let d = Levenshtein::new().distance(original, in_query);
        assert!(d <= 40.0 * 0.25, "planted region drifted too far: {d}");
    }

    #[test]
    fn pitch_queries_stay_close_under_erp() {
        let ds = generate_songs(&SongsConfig {
            num_sequences: 10,
            min_len: 80,
            max_len: 120,
            ..Default::default()
        });
        let config = QueryConfig {
            planted_len: 30,
            context_len: 5,
            perturbation_rate: 0.1,
            seed: 3,
        };
        let planted = plant_query(&ds, &PitchMutator, &config).unwrap();
        let source = ds.get(planted.source).unwrap();
        let original = &source.elements()[planted.source_range.clone()];
        let in_query = &planted.query.elements()[planted.query_range.clone()];
        let d = Erp::new().distance(original, in_query);
        assert!(d <= 30.0, "ERP drift too large: {d}");
    }

    #[test]
    fn returns_none_when_no_sequence_is_long_enough() {
        let ds = generate_proteins(&ProteinConfig {
            num_sequences: 3,
            min_len: 10,
            max_len: 15,
            ..Default::default()
        });
        let config = QueryConfig {
            planted_len: 100,
            ..Default::default()
        };
        assert!(plant_query(&ds, &SymbolMutator, &config).is_none());
    }

    #[test]
    fn zero_context_produces_exactly_the_planted_region() {
        let ds = generate_songs(&SongsConfig {
            num_sequences: 3,
            min_len: 60,
            max_len: 80,
            ..Default::default()
        });
        let config = QueryConfig {
            planted_len: 25,
            context_len: 0,
            perturbation_rate: 0.0,
            seed: 4,
        };
        let planted = plant_query(&ds, &PitchMutator, &config).unwrap();
        assert_eq!(planted.query.len(), 25);
        let source = ds.get(planted.source).unwrap();
        assert_eq!(
            planted.query.elements(),
            &source.elements()[planted.source_range.clone()]
        );
    }
}
