//! Synthetic protein sequences (PROTEINS stand-in).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use ssr_sequence::{Alphabet, Sequence, SequenceDataset, Symbol};

use crate::rng;

/// Configuration of the protein generator.
#[derive(Clone, Debug)]
pub struct ProteinConfig {
    /// Number of sequences to generate.
    pub num_sequences: usize,
    /// Minimum sequence length.
    pub min_len: usize,
    /// Maximum sequence length (inclusive).
    pub max_len: usize,
    /// Number of distinct motifs shared across the dataset.
    pub motif_count: usize,
    /// Length of each motif.
    pub motif_len: usize,
    /// Expected number of motif occurrences planted per sequence.
    pub motifs_per_sequence: f64,
    /// Per-position probability that a planted motif letter is mutated.
    pub mutation_rate: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ProteinConfig {
    fn default() -> Self {
        ProteinConfig {
            num_sequences: 100,
            min_len: 200,
            max_len: 400,
            motif_count: 15,
            motif_len: 60,
            motifs_per_sequence: 3.0,
            mutation_rate: 0.12,
            seed: 0xB105_F00D,
        }
    }
}

impl ProteinConfig {
    /// Convenience constructor that sizes the dataset so that partitioning
    /// with windows of length `window_len` yields approximately
    /// `total_windows` windows (the quantity the paper's figures sweep).
    pub fn sized_for_windows(total_windows: usize, window_len: usize, seed: u64) -> Self {
        let mut cfg = ProteinConfig {
            seed,
            ..Default::default()
        };
        let avg_len = (cfg.min_len + cfg.max_len) / 2;
        let windows_per_seq = (avg_len / window_len).max(1);
        cfg.num_sequences = (total_windows / windows_per_seq).max(1);
        cfg
    }
}

/// Generates a synthetic protein dataset.
///
/// Sequences are i.i.d. uniform over the 20-letter alphabet, with `motif_count`
/// shared motifs planted at random positions (each copy independently mutated
/// at `mutation_rate`). Random protein-alphabet windows are nearly always at
/// close-to-maximal Levenshtein distance from each other, which reproduces the
/// heavily right-shifted distance distribution of Figure 4; the planted motifs
/// provide the similar subsequences that retrieval queries should find.
pub fn generate_proteins(config: &ProteinConfig) -> SequenceDataset<Symbol> {
    assert!(config.min_len > 0 && config.min_len <= config.max_len);
    assert!((0.0..=1.0).contains(&config.mutation_rate));
    let alphabet = Alphabet::protein();
    let mut rng = rng(config.seed);
    let motifs: Vec<Vec<Symbol>> = (0..config.motif_count)
        .map(|_| random_string(&alphabet, config.motif_len, &mut rng))
        .collect();

    let mut dataset = SequenceDataset::new();
    for seq_index in 0..config.num_sequences {
        let len = rng.gen_range(config.min_len..=config.max_len);
        let mut elements = random_string(&alphabet, len, &mut rng);
        if !motifs.is_empty() {
            let copies = poisson_like(config.motifs_per_sequence, &mut rng);
            for _ in 0..copies {
                let motif = motifs.choose(&mut rng).expect("non-empty motif set");
                if motif.len() >= elements.len() {
                    continue;
                }
                let start = rng.gen_range(0..=elements.len() - motif.len());
                for (offset, &m) in motif.iter().enumerate() {
                    elements[start + offset] = if rng.gen_bool(config.mutation_rate) {
                        *alphabet
                            .symbols()
                            .choose(&mut rng)
                            .expect("non-empty alphabet")
                    } else {
                        m
                    };
                }
            }
        }
        dataset.push(Sequence::with_label(
            elements,
            format!("PROT{seq_index:05}"),
        ));
    }
    dataset
}

fn random_string(alphabet: &Alphabet, len: usize, rng: &mut ChaCha8Rng) -> Vec<Symbol> {
    (0..len)
        .map(|_| *alphabet.symbols().choose(rng).expect("non-empty alphabet"))
        .collect()
}

/// Small deterministic stand-in for a Poisson draw: floor plus a Bernoulli on
/// the fractional part.
fn poisson_like(mean: f64, rng: &mut ChaCha8Rng) -> usize {
    let base = mean.floor() as usize;
    let frac = mean - mean.floor();
    base + usize::from(rng.gen_bool(frac.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_number_of_sequences() {
        let cfg = ProteinConfig {
            num_sequences: 25,
            min_len: 50,
            max_len: 80,
            ..Default::default()
        };
        let ds = generate_proteins(&cfg);
        assert_eq!(ds.len(), 25);
        for (_, s) in ds.iter() {
            assert!(s.len() >= 50 && s.len() <= 80);
            assert!(s.label().unwrap().starts_with("PROT"));
        }
    }

    #[test]
    fn sequences_use_only_protein_alphabet() {
        let alphabet = Alphabet::protein();
        let ds = generate_proteins(&ProteinConfig {
            num_sequences: 5,
            min_len: 60,
            max_len: 60,
            ..Default::default()
        });
        for (_, s) in ds.iter() {
            for e in s.iter() {
                assert!(alphabet.contains(*e));
                assert!(!e.is_gap());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let cfg = ProteinConfig {
            num_sequences: 8,
            min_len: 40,
            max_len: 60,
            seed: 42,
            ..Default::default()
        };
        let a = generate_proteins(&cfg);
        let b = generate_proteins(&cfg);
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.elements(), y.elements());
        }
        let c = generate_proteins(&ProteinConfig { seed: 43, ..cfg });
        let differs = a
            .iter()
            .zip(c.iter())
            .any(|((_, x), (_, y))| x.elements() != y.elements());
        assert!(differs, "different seeds should give different data");
    }

    #[test]
    fn sized_for_windows_hits_the_target_roughly() {
        let cfg = ProteinConfig::sized_for_windows(1000, 20, 7);
        let ds = generate_proteins(&cfg);
        let windows = ssr_sequence::partition_windows_dataset(&ds, 20);
        let n = windows.len() as f64;
        assert!(n > 500.0 && n < 2000.0, "got {n} windows for target 1000");
    }

    #[test]
    fn motifs_create_similar_windows() {
        use ssr_distance::{Levenshtein, SequenceDistance};
        // With a single motif planted aggressively, some pair of windows from
        // different sequences must be much closer than random (distance << 20).
        let cfg = ProteinConfig {
            num_sequences: 10,
            min_len: 60,
            max_len: 60,
            motif_count: 1,
            motif_len: 40,
            motifs_per_sequence: 1.0,
            mutation_rate: 0.0,
            seed: 11,
        };
        let ds = generate_proteins(&cfg);
        let store = ssr_sequence::partition_windows_dataset(&ds, 20);
        let lev = Levenshtein::new();
        let mut best = f64::INFINITY;
        for (i, a) in store.iter() {
            for (j, b) in store.iter() {
                if a.sequence != b.sequence && i < j {
                    best = best.min(lev.distance(store.slice(i).unwrap(), store.slice(j).unwrap()));
                }
            }
        }
        assert!(
            best <= 5.0,
            "expected motif-induced similarity, best={best}"
        );
    }
}
