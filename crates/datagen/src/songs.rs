//! Synthetic pitch sequences (SONGS stand-in).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use ssr_sequence::{Pitch, Sequence, SequenceDataset};

use crate::rng;

/// Configuration of the SONGS generator.
#[derive(Clone, Debug)]
pub struct SongsConfig {
    /// Number of songs.
    pub num_sequences: usize,
    /// Minimum song length (in pitch events).
    pub min_len: usize,
    /// Maximum song length (inclusive).
    pub max_len: usize,
    /// Length of the repeated phrase each song is built from.
    pub phrase_len: usize,
    /// Probability that the next pitch continues the current phrase rather
    /// than stepping randomly.
    pub phrase_repeat_prob: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for SongsConfig {
    fn default() -> Self {
        SongsConfig {
            num_sequences: 200,
            min_len: 80,
            max_len: 200,
            phrase_len: 16,
            phrase_repeat_prob: 0.6,
            seed: 0x5053_0063,
        }
    }
}

impl SongsConfig {
    /// Sizes the dataset so that windowing with `window_len` produces roughly
    /// `total_windows` windows.
    pub fn sized_for_windows(total_windows: usize, window_len: usize, seed: u64) -> Self {
        let mut cfg = SongsConfig {
            seed,
            ..Default::default()
        };
        let avg_len = (cfg.min_len + cfg.max_len) / 2;
        let windows_per_seq = (avg_len / window_len).max(1);
        cfg.num_sequences = (total_windows / windows_per_seq).max(1);
        cfg
    }
}

/// Generates pitch sequences in `0..=11`.
///
/// Each song draws a short phrase and then interleaves (slightly perturbed)
/// phrase repetitions with a bounded random walk over the 12 pitch classes.
/// Because the alphabet is so small, the discrete Fréchet distance between
/// random windows concentrates on a few small values — the skew the paper
/// highlights in Figure 4 and blames for the large reference lists of
/// Figure 6 — while ERP, which sums rather than maximises, spreads out.
pub fn generate_songs(config: &SongsConfig) -> SequenceDataset<Pitch> {
    assert!(config.min_len > 0 && config.min_len <= config.max_len);
    assert!(config.phrase_len > 0);
    assert!((0.0..=1.0).contains(&config.phrase_repeat_prob));
    let mut rng = rng(config.seed);
    let mut dataset = SequenceDataset::new();
    for i in 0..config.num_sequences {
        let len = rng.gen_range(config.min_len..=config.max_len);
        let phrase = random_phrase(config.phrase_len, &mut rng);
        let mut elements: Vec<Pitch> = Vec::with_capacity(len);
        let mut current: i16 = rng.gen_range(0..=11);
        let mut phrase_pos = 0usize;
        for _ in 0..len {
            if rng.gen_bool(config.phrase_repeat_prob) {
                let base = phrase[phrase_pos % phrase.len()];
                phrase_pos += 1;
                // Occasional one-semitone ornamentation.
                let jitter: i16 = if rng.gen_bool(0.15) {
                    if rng.gen_bool(0.5) {
                        1
                    } else {
                        -1
                    }
                } else {
                    0
                };
                current = (base + jitter).clamp(0, 11);
            } else {
                let step: i16 = rng.gen_range(-2..=2);
                current = (current + step).clamp(0, 11);
            }
            elements.push(Pitch(current));
        }
        dataset.push(Sequence::with_label(elements, format!("SONG{i:05}")));
    }
    dataset
}

fn random_phrase(len: usize, rng: &mut ChaCha8Rng) -> Vec<i16> {
    let mut phrase = Vec::with_capacity(len);
    let mut current: i16 = rng.gen_range(0..=11);
    for _ in 0..len {
        let step: i16 = rng.gen_range(-3..=3);
        current = (current + step).clamp(0, 11);
        phrase.push(current);
    }
    phrase
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_distance::{DiscreteFrechet, Erp, SequenceDistance};
    use ssr_sequence::partition_windows_dataset;

    #[test]
    fn pitches_stay_in_range() {
        let ds = generate_songs(&SongsConfig {
            num_sequences: 20,
            min_len: 50,
            max_len: 100,
            ..Default::default()
        });
        assert_eq!(ds.len(), 20);
        for (_, s) in ds.iter() {
            for &p in s.iter() {
                assert!((0..=11).contains(&p.value()));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SongsConfig {
            num_sequences: 4,
            min_len: 40,
            max_len: 60,
            seed: 5,
            ..Default::default()
        };
        let a = generate_songs(&cfg);
        let b = generate_songs(&cfg);
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.elements(), y.elements());
        }
    }

    #[test]
    fn dfd_distribution_is_more_concentrated_than_erp() {
        // Reproduces the qualitative observation of Figure 4: on SONGS the
        // discrete Fréchet distance takes few distinct small values while ERP
        // spreads over a wide range.
        let ds = generate_songs(&SongsConfig::sized_for_windows(300, 20, 9));
        let store = partition_windows_dataset(&ds, 20);
        let dfd = DiscreteFrechet::new();
        let erp = Erp::new();
        let windows: Vec<_> = store
            .iter()
            .map(|(id, _)| store.slice(id).unwrap().to_vec())
            .take(60)
            .collect();
        let mut dfd_vals = Vec::new();
        let mut erp_vals = Vec::new();
        for i in 0..windows.len() {
            for j in (i + 1)..windows.len() {
                dfd_vals.push(dfd.distance(&windows[i], &windows[j]));
                erp_vals.push(erp.distance(&windows[i], &windows[j]));
            }
        }
        let spread = |vals: &[f64]| {
            let max = vals.iter().cloned().fold(f64::MIN, f64::max);
            let min = vals.iter().cloned().fold(f64::MAX, f64::min);
            max - min
        };
        // DFD is bounded by 11 while ERP can reach dozens; the ERP spread must
        // be clearly wider.
        assert!(spread(&erp_vals) > 2.0 * spread(&dfd_vals));
        assert!(dfd_vals.iter().all(|&v| v <= 11.0));
    }

    #[test]
    fn sized_for_windows_hits_target_roughly() {
        let cfg = SongsConfig::sized_for_windows(500, 20, 2);
        let ds = generate_songs(&cfg);
        let store = partition_windows_dataset(&ds, 20);
        let n = store.len() as f64;
        assert!(n > 250.0 && n < 1000.0, "{n} windows for target 500");
    }
}
