//! Synthetic DNA sequences.

use rand::seq::SliceRandom;
use rand::Rng;

use ssr_sequence::{Sequence, SequenceDataset, Symbol};

use crate::rng;

/// Configuration of the DNA generator.
#[derive(Clone, Debug)]
pub struct DnaConfig {
    /// Number of sequences.
    pub num_sequences: usize,
    /// Minimum sequence length.
    pub min_len: usize,
    /// Maximum sequence length (inclusive).
    pub max_len: usize,
    /// GC content in `[0, 1]` (probability of drawing G or C).
    pub gc_content: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for DnaConfig {
    fn default() -> Self {
        DnaConfig {
            num_sequences: 50,
            min_len: 300,
            max_len: 600,
            gc_content: 0.42,
            seed: 0xDEAD_BEEF,
        }
    }
}

/// Generates DNA sequences over `{A, C, G, T}` with the configured GC content.
pub fn generate_dna(config: &DnaConfig) -> SequenceDataset<Symbol> {
    assert!(config.min_len > 0 && config.min_len <= config.max_len);
    assert!((0.0..=1.0).contains(&config.gc_content));
    let mut rng = rng(config.seed);
    let gc = [Symbol::from_char('G'), Symbol::from_char('C')];
    let at = [Symbol::from_char('A'), Symbol::from_char('T')];
    let mut dataset = SequenceDataset::new();
    for i in 0..config.num_sequences {
        let len = rng.gen_range(config.min_len..=config.max_len);
        let elements: Vec<Symbol> = (0..len)
            .map(|_| {
                if rng.gen_bool(config.gc_content) {
                    *gc.choose(&mut rng).expect("non-empty")
                } else {
                    *at.choose(&mut rng).expect("non-empty")
                }
            })
            .collect();
        dataset.push(Sequence::with_label(elements, format!("DNA{i:05}")));
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::Alphabet;

    #[test]
    fn generates_valid_dna() {
        let ds = generate_dna(&DnaConfig {
            num_sequences: 10,
            min_len: 100,
            max_len: 120,
            ..Default::default()
        });
        let alphabet = Alphabet::dna();
        assert_eq!(ds.len(), 10);
        for (_, s) in ds.iter() {
            assert!(s.len() >= 100 && s.len() <= 120);
            assert!(s.iter().all(|&e| alphabet.contains(e)));
        }
    }

    #[test]
    fn gc_content_is_approximately_respected() {
        let ds = generate_dna(&DnaConfig {
            num_sequences: 5,
            min_len: 2000,
            max_len: 2000,
            gc_content: 0.7,
            seed: 3,
        });
        let (mut gc, mut total) = (0usize, 0usize);
        for (_, s) in ds.iter() {
            for &e in s.iter() {
                total += 1;
                if e == Symbol::from_char('G') || e == Symbol::from_char('C') {
                    gc += 1;
                }
            }
        }
        let ratio = gc as f64 / total as f64;
        assert!((ratio - 0.7).abs() < 0.05, "gc ratio {ratio}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DnaConfig {
            num_sequences: 3,
            min_len: 50,
            max_len: 60,
            seed: 99,
            ..Default::default()
        };
        let a = generate_dna(&cfg);
        let b = generate_dna(&cfg);
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.elements(), y.elements());
        }
    }
}
