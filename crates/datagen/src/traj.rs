//! Simulated parking-lot trajectories (TRAJ stand-in).

use rand::Rng;

use ssr_sequence::{Point2D, Sequence, SequenceDataset};

use crate::rng;

/// Configuration of the trajectory generator.
#[derive(Clone, Debug)]
pub struct TrajConfig {
    /// Number of trajectories.
    pub num_sequences: usize,
    /// Minimum number of sampled points per trajectory.
    pub min_len: usize,
    /// Maximum number of sampled points per trajectory (inclusive).
    pub max_len: usize,
    /// Number of parallel lanes in the simulated parking lot.
    pub lanes: usize,
    /// Spacing between adjacent lanes (metres).
    pub lane_spacing: f64,
    /// Length of a lane (metres).
    pub lane_length: f64,
    /// Standard deviation of the positional jitter added to every sample.
    pub noise_std: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for TrajConfig {
    fn default() -> Self {
        TrajConfig {
            num_sequences: 300,
            min_len: 60,
            max_len: 160,
            lanes: 8,
            lane_spacing: 6.0,
            lane_length: 80.0,
            noise_std: 0.4,
            seed: 0x7247_A9CE,
        }
    }
}

impl TrajConfig {
    /// Sizes the dataset so that windowing with `window_len` produces roughly
    /// `total_windows` windows.
    pub fn sized_for_windows(total_windows: usize, window_len: usize, seed: u64) -> Self {
        let mut cfg = TrajConfig {
            seed,
            ..Default::default()
        };
        let avg_len = (cfg.min_len + cfg.max_len) / 2;
        let windows_per_seq = (avg_len / window_len).max(1);
        cfg.num_sequences = (total_windows / windows_per_seq).max(1);
        cfg
    }
}

/// Generates 2-D trajectories through a simulated parking lot.
///
/// A vehicle (or pedestrian) enters at one end of a randomly chosen lane,
/// drives along it with small speed variations, occasionally turns into a
/// perpendicular aisle to switch lanes, and exits. Gaussian jitter models
/// tracking noise of the vision system that produced the paper's TRAJ data.
/// Trajectories that share (parts of) a lane yield similar subsequences, while
/// trajectories in distant lanes are far apart — giving the broad distance
/// distribution of Figure 4 and the small average parent counts of Figure 7.
pub fn generate_trajectories(config: &TrajConfig) -> SequenceDataset<Point2D> {
    assert!(config.min_len > 1 && config.min_len <= config.max_len);
    assert!(config.lanes >= 1);
    let mut rng = rng(config.seed);
    let mut dataset = SequenceDataset::new();
    for i in 0..config.num_sequences {
        let len = rng.gen_range(config.min_len..=config.max_len);
        let mut lane = rng.gen_range(0..config.lanes);
        let mut y = lane as f64 * config.lane_spacing;
        let forward = rng.gen_bool(0.5);
        let mut x = if forward { 0.0 } else { config.lane_length };
        let base_speed = rng.gen_range(0.8..1.6);
        let mut elements = Vec::with_capacity(len);
        let mut switching = 0usize; // samples remaining in a lane switch
        let mut target_y = y;
        for _ in 0..len {
            if switching == 0 && rng.gen_bool(0.02) && config.lanes > 1 {
                // Start a lane change towards an adjacent lane.
                let delta: i64 = if lane == 0 {
                    1
                } else if lane == config.lanes - 1 {
                    -1
                } else if rng.gen_bool(0.5) {
                    1
                } else {
                    -1
                };
                lane = (lane as i64 + delta) as usize;
                target_y = lane as f64 * config.lane_spacing;
                switching = 8;
            }
            if switching > 0 {
                y += (target_y - y) / switching as f64;
                switching -= 1;
            }
            let speed = base_speed * rng.gen_range(0.8..1.2);
            x += if forward { speed } else { -speed };
            x = x.clamp(0.0, config.lane_length);
            let jitter_x = gaussian(&mut rng) * config.noise_std;
            let jitter_y = gaussian(&mut rng) * config.noise_std;
            elements.push(Point2D::new(x + jitter_x, y + jitter_y));
        }
        dataset.push(Sequence::with_label(elements, format!("TRAJ{i:05}")));
    }
    dataset
}

/// Box–Muller standard normal sample.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::{partition_windows_dataset, Element};

    #[test]
    fn trajectories_have_requested_sizes() {
        let ds = generate_trajectories(&TrajConfig {
            num_sequences: 15,
            min_len: 30,
            max_len: 50,
            ..Default::default()
        });
        assert_eq!(ds.len(), 15);
        for (_, s) in ds.iter() {
            assert!(s.len() >= 30 && s.len() <= 50);
        }
    }

    #[test]
    fn points_stay_near_the_parking_lot() {
        let cfg = TrajConfig::default();
        let ds = generate_trajectories(&TrajConfig {
            num_sequences: 10,
            ..cfg.clone()
        });
        let max_y = (cfg.lanes - 1) as f64 * cfg.lane_spacing;
        for (_, s) in ds.iter() {
            for p in s.iter() {
                assert!(p.x >= -5.0 && p.x <= cfg.lane_length + 5.0, "x={}", p.x);
                assert!(p.y >= -5.0 && p.y <= max_y + 5.0, "y={}", p.y);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TrajConfig {
            num_sequences: 3,
            min_len: 20,
            max_len: 30,
            seed: 77,
            ..Default::default()
        };
        let a = generate_trajectories(&cfg);
        let b = generate_trajectories(&cfg);
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x.elements(), y.elements());
        }
    }

    #[test]
    fn consecutive_points_move_smoothly() {
        let ds = generate_trajectories(&TrajConfig {
            num_sequences: 5,
            min_len: 50,
            max_len: 50,
            ..Default::default()
        });
        for (_, s) in ds.iter() {
            for pair in s.elements().windows(2) {
                let step = pair[0].ground_distance(&pair[1]);
                assert!(step < 10.0, "implausible jump of {step} metres");
            }
        }
    }

    #[test]
    fn sized_for_windows_hits_target_roughly() {
        let cfg = TrajConfig::sized_for_windows(400, 20, 4);
        let ds = generate_trajectories(&cfg);
        let store = partition_windows_dataset(&ds, 20);
        let n = store.len() as f64;
        assert!(n > 200.0 && n < 900.0, "{n} windows for target 400");
    }
}
