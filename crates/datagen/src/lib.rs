//! # ssr-datagen
//!
//! Synthetic dataset and query generators standing in for the paper's three
//! evaluation datasets, which are external resources we cannot ship:
//!
//! * **PROTEINS** (UniProt protein sequences, Levenshtein distance) →
//!   [`proteins`]: random sequences over the 20-letter amino-acid alphabet
//!   with planted, mutated motifs, so that most window pairs are near the
//!   maximum edit distance (the skewed distribution of Figure 4) while motif
//!   re-occurrences provide genuinely similar subsequences to retrieve.
//! * **SONGS** (Million Song Dataset pitch sequences, DFD and ERP) →
//!   [`songs`]: bounded pitch values `0..=11` produced by a biased random walk
//!   with repeated phrases; the bounded alphabet reproduces the paper's
//!   observation that the DFD distribution is extremely skewed (most distances
//!   between 2 and 5) while ERP spreads out.
//! * **TRAJ** (parking-lot video trajectories, DFD and ERP) → [`traj`]:
//!   lane-following piecewise-linear paths with Gaussian jitter across a
//!   simulated parking lot, giving the wider-variance distance distribution of
//!   Figure 4 and the small parent counts of Figure 7.
//!
//! [`dna`] additionally generates 4-letter DNA data for the string examples,
//! and [`queries`] derives retrieval queries by excising a subsequence from
//! the database, mutating it, and optionally embedding it in random context —
//! so that every generated query has a known planted answer.
//!
//! All generators are deterministic given a seed (ChaCha8 PRNG).

pub mod dna;
pub mod proteins;
pub mod queries;
pub mod songs;
pub mod traj;

pub use dna::{generate_dna, DnaConfig};
pub use proteins::{generate_proteins, ProteinConfig};
pub use queries::{
    plant_query, PitchMutator, PlantedQuery, PointMutator, QueryConfig, QueryMutator, SymbolMutator,
};
pub use songs::{generate_songs, SongsConfig};
pub use traj::{generate_trajectories, TrajConfig};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the deterministic PRNG used by all generators.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}
